"""Checkpointed, fault-tolerant execution of (algorithm × instance) sweeps.

:func:`resumable_sweep` is the robust twin of
:func:`repro.simulation.parallel.parallel_sweep`: same unit payloads
(built by the shared :func:`~repro.simulation.parallel.build_payloads`),
same return shape, bit-identical results — plus:

* **Checkpointing** — completed units stream into a
  :class:`~repro.orchestration.checkpoint.CheckpointStore` (append-only
  JSONL shards, atomic flushes), so a crash or ctrl-C loses at most the
  units completed since the last flush, and nothing that was flushed.
* **Resume** — with ``resume=True``, units already in the checkpoint are
  skipped (counted as ``units_resumed``); the merged output is
  bit-identical to an uninterrupted run, which the
  :func:`repro.verify.resume_equality_check` oracle enforces.
* **Per-unit retry** — a unit that raises is re-queued up to ``retries``
  times with deterministic exponential backoff
  (:class:`~repro.orchestration.faults.RetryPolicy`); the attempt
  number lives outside the payload, so a retried unit computes exactly
  what the first attempt would have.
* **BrokenProcessPool recovery** — a worker death kills every in-flight
  future of a ``ProcessPoolExecutor``; the orchestrator respawns the
  pool and re-queues all in-flight units with their attempt count
  bumped, so one crashing unit cannot take completed work (or innocent
  neighbours) down with it.
* **Per-unit timeout** — a unit running past ``unit_timeout`` seconds
  cannot be cancelled in-place (the worker is busy), so the pool is
  recycled: workers are terminated, the expired unit re-queues with its
  attempt bumped, other in-flight units re-queue unchanged.
* **Graceful engine degradation** — ``engine="fast"`` units that hit a
  kernel failure fall back to the classic engine *inside the worker*
  (see :func:`repro.simulation.engine.simulate`), surfacing as
  ``fastpath_fallbacks`` in the unit's stats rather than as a fault.

Deterministic fault injection for tests and the CI kill-resume job is
driven entirely by ``REPRO_FAULT_*`` environment variables — see
:mod:`repro.orchestration.faults`.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import UnitFailedError
from ..core.instance import Instance
from ..observability.sinks import TraceSink
from ..observability.stats import StatsCollector
from ..simulation.parallel import (
    BATCH_UNIT,
    UnitResult,
    _materialize_sources,
    build_batch_payloads,
    build_payloads,
    payload_unit_keys,
    unit_key,
)
from .checkpoint import CheckpointStore, sweep_fingerprint
from .faults import FaultPlan, RetryPolicy, fault_aware_unit

__all__ = ["resumable_sweep"]

#: How many completed units accumulate before a checkpoint flush.
DEFAULT_FLUSH_EVERY = 16


def _emit(sink: Optional[TraceSink], kind: str, payload: dict) -> None:
    if sink is not None:
        sink.emit(kind, payload)


class _SweepState:
    """Mutable bookkeeping shared by the serial and pooled executors."""

    def __init__(
        self,
        store: Optional[CheckpointStore],
        collector: StatsCollector,
        sink: Optional[TraceSink],
        flush_every: int,
        plan: FaultPlan,
    ) -> None:
        self.store = store
        self.collector = collector
        self.sink = sink
        self.flush_every = max(int(flush_every), 1)
        self.plan = plan
        self.results: List[UnitResult] = []
        self.since_flush = 0

    def complete(self, result: UnitResult) -> None:
        self.results.append(result)
        if self.store is not None:
            self.store.append(result)
            self.since_flush += 1
            if self.since_flush >= self.flush_every:
                self.flush()

    def flush(self) -> None:
        if self.store is not None and self.since_flush:
            self.store.flush()
            self.since_flush = 0
            _emit(
                self.sink,
                "checkpoint_flush",
                {"flushes": self.store.flushes, "units": len(self.store)},
            )
            # kill-resume smoke hook: die *after* a durable flush
            self.plan.maybe_kill_self(self.store.flushes)


def resumable_sweep(
    algorithms: Sequence[str],
    instances: Sequence[Instance],
    processes: Optional[int] = None,
    algorithm_kwargs: Optional[Mapping[str, Mapping[str, object]]] = None,
    collect_stats: bool = False,
    engine: str = "classic",
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    retries: int = 0,
    unit_timeout: Optional[float] = None,
    retry_policy: Optional[RetryPolicy] = None,
    flush_every: int = DEFAULT_FLUSH_EVERY,
    max_units: Optional[int] = None,
    collector: Optional[StatsCollector] = None,
    sink: Optional[TraceSink] = None,
) -> Dict[str, List[UnitResult]]:
    """Run a sweep with checkpointing, retries, and pool recovery.

    Parameters mirror :func:`~repro.simulation.parallel.parallel_sweep`
    (``processes=None`` = cpu count, ``0`` = in-process serial), plus:

    checkpoint_dir:
        Directory for the crash-safe result store (created if needed).
        ``None`` disables persistence but keeps retry/timeout handling.
    resume:
        Skip units the checkpoint already holds.  Requires
        ``checkpoint_dir``; the store's fingerprint must match this
        sweep or :class:`~repro.core.errors.CheckpointError` is raised.
    retries:
        Per-unit retry budget (``retry_policy`` overrides the whole
        policy when given).  A unit that exhausts it raises
        :class:`~repro.core.errors.UnitFailedError` — after a final
        checkpoint flush, so completed work survives the failure.
    unit_timeout:
        Per-unit wall-clock budget in seconds, measured from dispatch
        (pooled mode only; the serial path cannot preempt a running
        simulation and ignores it).
    flush_every:
        Checkpoint flush cadence in completed units.
    max_units:
        Stop dispatching after this many *newly completed* units (the
        resume-determinism oracle uses it to fabricate interrupted runs
        without real kills).  In pooled mode, already-dispatched units
        still drain and are checkpointed.
    collector:
        Orchestrator-side :class:`~repro.observability.stats.StatsCollector`
        receiving the fault-recovery counters (``retries``,
        ``unit_timeouts``, ``units_resumed``, ``pool_restarts``).
    sink:
        Optional :class:`~repro.observability.sinks.TraceSink` receiving
        ``unit_resumed`` / ``retry`` / ``unit_timeout`` /
        ``pool_restart`` / ``checkpoint_flush`` trace events.

    Returns ``{algorithm: [UnitResult, ...]}`` ordered by instance
    index — bit-identical to ``parallel_sweep`` on the same arguments,
    interrupted or not.
    """
    algorithms = list(algorithms)
    instances = list(instances)
    col = collector if collector is not None else StatsCollector()
    policy = retry_policy if retry_policy is not None else RetryPolicy(retries=int(retries))
    plan = FaultPlan.from_env()

    if engine == "batch":
        payloads = build_batch_payloads(
            algorithms, instances, algorithm_kwargs, collect_stats
        )
    else:
        payloads = build_payloads(
            algorithms, _materialize_sources(instances), algorithm_kwargs,
            collect_stats, engine
        )

    store: Optional[CheckpointStore] = None
    resumed: Dict[Tuple[str, int], UnitResult] = {}
    if checkpoint_dir is not None:
        fingerprint = sweep_fingerprint(
            algorithms, instances, algorithm_kwargs, engine
        )
        store = CheckpointStore(checkpoint_dir, fingerprint=fingerprint)
        if resume:
            wanted = {k for p in payloads for k in payload_unit_keys(p)}
            resumed = {k: v for k, v in store.completed.items() if k in wanted}
            if resumed:
                col.record_fault_event("unit_resumed", count=len(resumed))
                _emit(sink, "unit_resumed", {"count": len(resumed)})

    pending: Deque[Tuple[int, tuple]] = deque(
        (0, p) for p in (_strip_resumed(p, resumed) for p in payloads) if p is not None
    )
    state = _SweepState(store, col, sink, flush_every, plan)

    try:
        if processes == 0:
            _run_serial(pending, state, policy, max_units)
        else:
            workers = processes or os.cpu_count() or 1
            _run_pooled(pending, state, policy, workers, unit_timeout, max_units)
    finally:
        state.flush()

    merged = list(resumed.values()) + state.results
    out: Dict[str, List[UnitResult]] = {name: [] for name in algorithms}
    for res in merged:
        out[res.algorithm].append(res)
    for name in algorithms:
        out[name].sort(key=lambda r: r.instance_index)
    return out


def _strip_resumed(
    payload: tuple, resumed: Dict[Tuple[str, int], UnitResult]
) -> Optional[tuple]:
    """Drop already-completed work from a payload (``None`` = all done).

    Per-unit payloads are kept or dropped whole.  A *batched* payload is
    trimmed entry-by-entry, so resuming mid-batch re-runs only the
    algorithms the checkpoint is missing for that instance — the basis of
    the resume-mid-batch bit-identity guarantee.
    """
    if not resumed:
        return payload
    if payload[0] != BATCH_UNIT:
        return None if unit_key(payload) in resumed else payload
    index = payload[2]
    entries = tuple(e for e in payload[1] if (e[0], index) not in resumed)
    if not entries:
        return None
    if len(entries) == len(payload[1]):
        return payload
    return (payload[0], entries) + payload[2:]


def _complete_result(state: _SweepState, result) -> int:
    """Record a worker result; returns how many units it completed.

    Per-unit payloads resolve to one :class:`UnitResult`, batched
    payloads to a list of them (each checkpointed individually, so flush
    cadence and resume keys are engine-independent).
    """
    if isinstance(result, list):
        for unit in result:
            state.complete(unit)
        return len(result)
    state.complete(result)
    return 1


def _fail(state: _SweepState, key: Tuple[str, int], cause: BaseException) -> None:
    """Flush completed work, then give up on one unit."""
    state.flush()
    raise UnitFailedError(
        f"unit {key} exhausted its retry budget; completed units are "
        f"checkpointed — rerun with resume=True to keep them "
        f"(cause: {type(cause).__name__}: {cause})"
    ) from cause


def _run_serial(
    pending: "Deque[Tuple[int, tuple]]",
    state: _SweepState,
    policy: RetryPolicy,
    max_units: Optional[int],
) -> None:
    """In-process executor: retry loop per unit, no preemption."""
    completed = 0
    while pending:
        if max_units is not None and completed >= max_units:
            return
        attempt, payload = pending.popleft()
        while True:
            try:
                result = fault_aware_unit((attempt, payload))
                break
            except Exception as exc:
                if attempt >= policy.retries:
                    _fail(state, unit_key(payload), exc)
                attempt += 1
                state.collector.record_fault_event("retry")
                _emit(
                    state.sink,
                    "retry",
                    {"unit": list(unit_key(payload)), "attempt": attempt},
                )
                time.sleep(policy.delay(attempt))
        completed += _complete_result(state, result)


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, stuck workers included.

    ``shutdown(wait=False)`` alone leaves a hung worker running its
    current task forever; terminating the worker processes is the only
    way to reclaim the slot.  ``_processes`` is executor-internal, so
    guard the access — on interpreters without it the zombies survive
    until process exit, which degrades but does not corrupt.
    """
    procs = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        try:
            proc.terminate()
        except (OSError, AttributeError):  # already dead, or exotic platform
            pass


def _run_pooled(
    pending: "Deque[Tuple[int, tuple]]",
    state: _SweepState,
    policy: RetryPolicy,
    workers: int,
    unit_timeout: Optional[float],
    max_units: Optional[int],
) -> None:
    """Process-pool executor with retry, timeout, and pool recovery."""
    col = state.collector
    pool = ProcessPoolExecutor(max_workers=workers)
    inflight: Dict[object, Tuple[int, tuple, float]] = {}
    completed = 0

    def requeue(attempt: int, payload: tuple, bump: bool, cause: BaseException) -> None:
        if bump and attempt >= policy.retries:
            _fail(state, unit_key(payload), cause)
        pending.appendleft((attempt + 1 if bump else attempt, payload))

    def recycle(kind: str, faulted, cause: BaseException) -> None:
        """Respawn the pool; re-queue every in-flight unit.

        Units in ``faulted`` get their attempt bumped (counting against
        the retry budget); the rest re-queue unchanged.
        """
        nonlocal pool
        faulted_keys = {unit_key(p) for _, p in faulted}
        for attempt, payload, _ in list(inflight.values()):
            bump = unit_key(payload) in faulted_keys
            requeue(attempt, payload, bump, cause)
        inflight.clear()
        col.record_fault_event("pool_restart")
        if faulted_keys and kind == "broken_pool":
            col.record_fault_event("retry", count=len(faulted_keys))
        _emit(
            state.sink,
            "pool_restart",
            {"cause": kind, "faulted": sorted(map(list, faulted_keys))},
        )
        _terminate_pool(pool)
        pool = ProcessPoolExecutor(max_workers=workers)

    try:
        while pending or inflight:
            # keep the pool saturated without materialising every future
            while pending and len(inflight) < workers * 2:
                if max_units is not None and completed + len(inflight) >= max_units:
                    break
                attempt, payload = pending.popleft()
                future = pool.submit(fault_aware_unit, (attempt, payload))
                inflight[future] = (attempt, payload, time.monotonic())
            if not inflight:
                return  # max_units reached with nothing left in flight

            poll: Optional[float] = None
            if unit_timeout is not None:
                now = time.monotonic()
                deadlines = [t0 + unit_timeout for _, _, t0 in inflight.values()]
                poll = max(0.0, min(deadlines) - now) + 0.01
            done, _ = wait(set(inflight), timeout=poll, return_when=FIRST_COMPLETED)

            if unit_timeout is not None:
                now = time.monotonic()
                expired = [
                    (attempt, payload)
                    for future, (attempt, payload, t0) in inflight.items()
                    if future not in done and now - t0 > unit_timeout
                ]
                if expired:
                    col.record_fault_event("unit_timeout", count=len(expired))
                    for attempt, payload in expired:
                        _emit(
                            state.sink,
                            "unit_timeout",
                            {"unit": list(unit_key(payload)), "attempt": attempt},
                        )
                    # harvest whatever did finish before tearing down
                    for future in done:
                        attempt, payload, _ = inflight.pop(future)
                        try:
                            completed += _complete_result(state, future.result())
                        except Exception as exc:
                            requeue(attempt, payload, True, exc)
                            col.record_fault_event("retry")
                    recycle("timeout", expired, TimeoutError("unit timeout"))
                    continue

            broken: Optional[BrokenProcessPool] = None
            for future in done:
                try:
                    result = future.result()
                except BrokenProcessPool as exc:
                    # A worker death breaks *every* in-flight future at
                    # once, and nothing identifies which unit killed it —
                    # the future surfacing the error first is arbitrary.
                    # Leave inflight intact for recycle() below.
                    broken = exc
                    break
                except Exception as exc:
                    attempt, payload, _ = inflight.pop(future)
                    requeue(attempt, payload, True, exc)
                    col.record_fault_event("retry")
                    _emit(
                        state.sink,
                        "retry",
                        {"unit": list(unit_key(payload)), "attempt": attempt + 1},
                    )
                    time.sleep(policy.delay(attempt + 1))
                else:
                    attempt, payload, _ = inflight.pop(future)
                    completed += _complete_result(state, result)
            if broken is not None:
                # every in-flight unit is a suspect: bump them all, so
                # the actual culprit cannot re-run at an attempt whose
                # fault it would hit again
                recycle(
                    "broken_pool",
                    [(a, p) for a, p, _ in inflight.values()],
                    broken,
                )
    finally:
        _terminate_pool(pool)
