"""Crash-safe sharded persistence of sweep results.

A checkpointed sweep writes every completed
:class:`~repro.simulation.parallel.UnitResult` to an append-only store
under one directory:

* ``shard-NNNN.jsonl`` — one JSON record per completed unit.  Shards are
  *immutable once written*: results buffer in memory and each
  :meth:`CheckpointStore.flush` writes one new shard via the
  write-to-temp + ``os.replace`` (atomic rename) protocol, then fsyncs
  the directory, so a SIGKILL at any instant leaves either a complete
  shard or an ignorable ``*.tmp``.
* ``manifest.json`` — the store's index: the sweep fingerprint plus, per
  shard, its unit count and SHA-256 content hash.  The manifest is also
  replaced atomically, *after* the shard it references, so every shard
  the manifest lists is guaranteed complete.

Loading is deliberately forgiving (recomputing a unit is always safe,
trusting a bad record never is):

* a shard whose content hash disagrees with the manifest is dropped with
  a :class:`RuntimeWarning` — its units simply re-run;
* a shard present on disk but missing from the manifest (crash between
  the two renames) is *adopted* if every line parses — completed work is
  never thrown away;
* a trailing partial line (torn write on a non-atomic filesystem) drops
  that shard's remaining lines only.

The **fingerprint** binds a store to one logical sweep: algorithms,
per-algorithm kwargs, engine, and a content digest of every instance.
Resuming against a directory whose fingerprint disagrees raises
:class:`~repro.core.errors.CheckpointError` — silently mixing results
from two different sweeps is the one failure mode this layer must never
allow.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import CheckpointError
from ..core.instance import Instance
from ..observability.stats import RunStats
from ..simulation.parallel import UnitResult

__all__ = [
    "CheckpointStore",
    "sweep_fingerprint",
    "result_to_record",
    "record_to_result",
    "atomic_write",
]

SCHEMA = "repro.orchestration.checkpoint/v1"
MANIFEST = "manifest.json"
SHARD_PREFIX = "shard-"
SHARD_SUFFIX = ".jsonl"


def sweep_fingerprint(
    algorithms: Sequence[str],
    instances: Sequence[Instance],
    algorithm_kwargs: Optional[Mapping[str, Mapping[str, object]]] = None,
    engine: str = "classic",
) -> str:
    """Content digest identifying one logical sweep.

    Hashes the algorithm list (order included — it determines unit
    order), the per-algorithm kwargs, the engine, and the full content
    of every instance source (via its ``to_dict`` JSON).  Hashing an
    instance costs far less than simulating it, so the full digest is
    cheap relative to the sweep it protects.

    Sources may also be compact
    :class:`~repro.simulation.batch.InstanceSpec` recipes (the
    ``engine="batch"`` dispatch form); a spec hashes as its own
    (generator, params, entropy) dict, so a spec-driven sweep must be
    resumed with the same specs, not with pre-materialised instances.
    """
    h = hashlib.sha256()
    meta = {
        "schema": SCHEMA,
        "algorithms": list(algorithms),
        "algorithm_kwargs": {
            name: dict(kw) for name, kw in sorted((algorithm_kwargs or {}).items())
        },
        "engine": engine,
        "num_instances": len(instances),
    }
    h.update(json.dumps(meta, sort_keys=True, default=str).encode("utf-8"))
    for inst in instances:
        h.update(json.dumps(inst.to_dict(), sort_keys=True).encode("utf-8"))
    return h.hexdigest()


def result_to_record(result: UnitResult) -> Dict[str, object]:
    """JSON-ready form of one :class:`UnitResult` (stats included)."""
    return {
        "algorithm": result.algorithm,
        "instance_index": result.instance_index,
        "cost": result.cost,
        "num_bins": result.num_bins,
        "lower_bound": result.lower_bound,
        "stats": result.stats.to_dict() if result.stats is not None else None,
    }


def record_to_result(record: Mapping[str, object]) -> UnitResult:
    """Inverse of :func:`result_to_record`."""
    stats = record.get("stats")
    return UnitResult(
        algorithm=str(record["algorithm"]),
        instance_index=int(record["instance_index"]),
        cost=float(record["cost"]),
        num_bins=int(record["num_bins"]),
        lower_bound=float(record["lower_bound"]),
        stats=RunStats.from_dict(stats) if stats is not None else None,
    )


def _sha256_file(path: str) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 16), b""):
            h.update(chunk)
    return h.hexdigest()


def _atomic_write(path: str, data: str) -> None:
    """Write ``data`` to ``path`` via temp file + atomic rename + fsync."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    # fsync the directory so the rename itself survives a crash
    dir_fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


#: Public alias: the crash-safe write primitive is also the persistence
#: layer of :class:`repro.streaming.service.PlacementService` snapshots.
atomic_write = _atomic_write


class CheckpointStore:
    """Sharded, crash-safe store of completed sweep units.

    Parameters
    ----------
    directory:
        Store location; created if missing.
    fingerprint:
        The sweep fingerprint (:func:`sweep_fingerprint`).  On open, an
        existing manifest's fingerprint must match or
        :class:`~repro.core.errors.CheckpointError` is raised; pass
        ``None`` to skip the guard (inspection tools only).

    Usage: :meth:`append` buffers completed units, :meth:`flush` writes
    one new immutable shard and re-indexes the manifest; ``completed``
    maps ``(algorithm, instance_index)`` to the stored results loaded at
    open time plus everything appended since.
    """

    def __init__(self, directory: str, fingerprint: Optional[str] = None) -> None:
        self.directory = str(directory)
        self.fingerprint = fingerprint
        os.makedirs(self.directory, exist_ok=True)
        self._buffer: List[UnitResult] = []
        self._shards: List[Dict[str, object]] = []  # manifest shard entries
        self.completed: Dict[Tuple[str, int], UnitResult] = {}
        self.flushes = 0
        self._load()

    # -- loading -------------------------------------------------------
    def _manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST)

    def _load(self) -> None:
        manifest: Dict[str, object] = {}
        path = self._manifest_path()
        if os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    manifest = json.load(fh)
            except (OSError, ValueError):
                warnings.warn(
                    f"checkpoint manifest {path} is unreadable; "
                    "re-indexing from shards",
                    RuntimeWarning,
                )
                manifest = {}
        stored_fp = manifest.get("fingerprint")
        if (
            self.fingerprint is not None
            and stored_fp is not None
            and stored_fp != self.fingerprint
        ):
            raise CheckpointError(
                f"checkpoint at {self.directory} belongs to a different sweep "
                f"(stored fingerprint {str(stored_fp)[:12]}…, expected "
                f"{self.fingerprint[:12]}…); use a fresh --checkpoint-dir"
            )
        listed = {
            str(entry["name"]): str(entry["sha256"])
            for entry in manifest.get("shards", [])
        }
        on_disk = sorted(
            name
            for name in os.listdir(self.directory)
            if name.startswith(SHARD_PREFIX) and name.endswith(SHARD_SUFFIX)
        )
        for name in on_disk:
            shard_path = os.path.join(self.directory, name)
            digest = _sha256_file(shard_path)
            if name in listed and listed[name] != digest:
                warnings.warn(
                    f"checkpoint shard {name} content hash mismatch; dropping "
                    "it (its units will re-run)",
                    RuntimeWarning,
                )
                continue
            results = self._read_shard(shard_path, name)
            if results is None:
                continue
            for res in results:
                self.completed[(res.algorithm, res.instance_index)] = res
            self._shards.append(
                {"name": name, "sha256": digest, "units": len(results)}
            )

    def _read_shard(self, path: str, name: str) -> Optional[List[UnitResult]]:
        """Parse one shard; tolerate a torn trailing line, drop junk shards."""
        out: List[UnitResult] = []
        try:
            with open(path, "r", encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except OSError:
            warnings.warn(
                f"checkpoint shard {name} unreadable; dropping it", RuntimeWarning
            )
            return None
        for lineno, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                out.append(record_to_result(json.loads(line)))
            except (ValueError, KeyError, TypeError):
                warnings.warn(
                    f"checkpoint shard {name}: undecodable record at line "
                    f"{lineno + 1}; keeping the {len(out)} records before it",
                    RuntimeWarning,
                )
                break
        return out

    # -- writing -------------------------------------------------------
    def append(self, result: UnitResult) -> None:
        """Buffer one completed unit (persisted at the next flush)."""
        key = (result.algorithm, result.instance_index)
        if key not in self.completed:
            self._buffer.append(result)
            self.completed[key] = result

    def flush(self) -> Optional[str]:
        """Persist buffered units as one new shard; update the manifest.

        Returns the new shard's filename, or ``None`` when the buffer is
        empty (flushing nothing is a no-op, not an error).  The shard is
        renamed into place *before* the manifest referencing it, so a
        crash between the two leaves an adoptable orphan, never a
        manifest entry for a missing shard.
        """
        if not self._buffer:
            return None
        index = 0
        existing = {str(entry["name"]) for entry in self._shards}
        while f"{SHARD_PREFIX}{index:04d}{SHARD_SUFFIX}" in existing:
            index += 1
        name = f"{SHARD_PREFIX}{index:04d}{SHARD_SUFFIX}"
        path = os.path.join(self.directory, name)
        data = "".join(
            json.dumps(result_to_record(res), sort_keys=True) + "\n"
            for res in self._buffer
        )
        _atomic_write(path, data)
        self._shards.append(
            {
                "name": name,
                "sha256": hashlib.sha256(data.encode("utf-8")).hexdigest(),
                "units": len(self._buffer),
            }
        )
        self._buffer = []
        self._write_manifest()
        self.flushes += 1
        return name

    def _write_manifest(self) -> None:
        manifest = {
            "schema": SCHEMA,
            "fingerprint": self.fingerprint,
            "shards": self._shards,
            "total_units": sum(int(s["units"]) for s in self._shards),
        }
        _atomic_write(
            self._manifest_path(), json.dumps(manifest, indent=2, sort_keys=True)
        )

    # -- reading -------------------------------------------------------
    def __len__(self) -> int:
        return len(self.completed)

    def __contains__(self, key: Tuple[str, int]) -> bool:
        return key in self.completed
