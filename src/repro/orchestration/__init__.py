"""Fault-tolerant, resumable sweep orchestration.

This package makes long sweeps survive the failures that real runs hit:
worker crashes, hung units, dead process pools, and the orchestrator
itself being killed mid-run.  Three modules:

* :mod:`~repro.orchestration.checkpoint` — crash-safe sharded result
  persistence (append-only JSONL shards + hashed manifest, atomic
  renames) and the sweep fingerprint that binds a store to one sweep.
* :mod:`~repro.orchestration.faults` — retry/backoff primitives and the
  deterministic env-driven fault-injection harness (``REPRO_FAULT_*``).
* :mod:`~repro.orchestration.sweep` — :func:`resumable_sweep`, the
  checkpointed, self-healing twin of
  :func:`repro.simulation.parallel.parallel_sweep`, bit-identical in
  output whether or not the run was interrupted.

The guiding invariant: **recovery never changes results**.  Retried
units re-run byte-identical payloads, resumed runs merge stored and
fresh units into exactly what an uninterrupted run returns, and the
:func:`repro.verify.resume_equality_check` oracle enforces this
end-to-end for both engines.
"""

from .checkpoint import (
    CheckpointStore,
    atomic_write,
    record_to_result,
    result_to_record,
    sweep_fingerprint,
)
from .faults import (
    ENV_FAULT_KILL_AFTER,
    ENV_FAULT_MODE,
    ENV_FAULT_TIMES,
    ENV_FAULT_UNITS,
    FaultPlan,
    InjectedWorkerFault,
    RetryPolicy,
    call_with_retry,
    fault_aware_unit,
)
from .sweep import resumable_sweep

__all__ = [
    "CheckpointStore",
    "atomic_write",
    "ENV_FAULT_KILL_AFTER",
    "ENV_FAULT_MODE",
    "ENV_FAULT_TIMES",
    "ENV_FAULT_UNITS",
    "FaultPlan",
    "InjectedWorkerFault",
    "RetryPolicy",
    "call_with_retry",
    "fault_aware_unit",
    "record_to_result",
    "result_to_record",
    "resumable_sweep",
    "sweep_fingerprint",
]
