"""PlacementService semantics, snapshot/restore, and the serve protocol.

The service contract: a monotonic clock, scheduled departures firing
before same-instant arrivals (the :mod:`repro.core.events` tie-break),
open-ended items departing only explicitly, exact Eq. 1 cost accrual,
and a snapshot/restore round trip that yields *identical future
decisions* — including the ``random_fit`` RNG stream position.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, InvalidItemError
from repro.observability.stats import StatsCollector
from repro.simulation.runner import run
from repro.streaming import OPEN_ENDED, PlacementService, serve_loop
from repro.workloads.uniform import UniformWorkload

SNAPSHOT_POLICIES = ["move_to_front", "first_fit", "next_fit",
                     "random_fit", "harmonic_fit"]


class TestServiceSemantics:
    def test_place_depart_lifecycle(self):
        svc = PlacementService(policy="first_fit", capacity=10.0, d=2)
        b0 = svc.place([6.0, 6.0], duration=4.0)        # departs at 4
        b1 = svc.place([6.0, 6.0], at=1.0)              # open-ended, new bin
        assert b0 == 0 and b1 == 1
        assert svc.live_items == 2 and svc.open_bins == 2
        fired = svc.advance(10.0)
        assert fired == 1                                # the scheduled one
        assert svc.live_items == 1 and svc.open_bins == 1
        assert svc.depart(1) is True                     # closes bin 1
        assert svc.live_items == 0 and svc.open_bins == 0
        # cost: bin 0 open [0, 4), bin 1 open [1, 10)
        assert svc.cost == pytest.approx((4.0 - 0.0) + (10.0 - 1.0))

    def test_clock_is_monotonic(self):
        svc = PlacementService(capacity=10.0)
        svc.place(1.0, at=5.0)
        with pytest.raises(ConfigurationError):
            svc.place(1.0, at=4.0)
        with pytest.raises(ConfigurationError):
            svc.advance(4.0)

    def test_departure_fires_before_same_instant_arrival(self):
        # item 0 fills the bin and departs at t=2; the t=2 arrival must
        # see the bin already vacated (departures-first tie-break) —
        # first_fit then reuses nothing because the bin closed
        svc = PlacementService(policy="first_fit", capacity=10.0)
        svc.place(10.0, duration=2.0)
        b = svc.place(10.0, at=2.0)
        assert b == 1  # bin 0 closed the instant before
        assert svc.open_bins == 1
        assert svc.stats().bins_closed == 1

    def test_explicit_depart_then_scheduled_time_is_stale(self):
        svc = PlacementService(capacity=10.0)
        svc.place(5.0, duration=8.0, item_id=42)
        svc.depart(42, at=3.0)                 # explicit, early
        assert svc.live_items == 0
        fired = svc.advance(20.0)              # stale heap entry skipped
        assert fired == 0
        assert svc.stats().departures == 1

    def test_depart_unknown_item_raises(self):
        svc = PlacementService(capacity=10.0)
        with pytest.raises(ConfigurationError):
            svc.depart(7)

    def test_duplicate_live_item_id_raises(self):
        svc = PlacementService(capacity=10.0)
        svc.place(1.0, item_id=3)
        with pytest.raises(ConfigurationError):
            svc.place(1.0, item_id=3)

    def test_oversized_item_raises(self):
        svc = PlacementService(capacity=[4.0, 4.0])
        with pytest.raises(InvalidItemError):
            svc.place([5.0, 1.0])
        with pytest.raises(InvalidItemError):
            svc.place([1.0, 1.0, 1.0])  # wrong dimensionality

    def test_duration_and_departure_are_exclusive(self):
        svc = PlacementService(capacity=10.0)
        with pytest.raises(ConfigurationError):
            svc.place(1.0, duration=2.0, departure=5.0)

    def test_open_ended_sentinel_never_reaches_cost(self):
        svc = PlacementService(capacity=10.0)
        svc.place(1.0)                                   # open-ended at t=0
        svc.advance(7.0)
        assert svc.cost == pytest.approx(7.0)
        assert svc.cost < OPEN_ENDED / 2                 # sanity: finite, small

    def test_matches_batch_engine_on_replayed_instance(self):
        # replaying a materialised instance call by call must accrue the
        # classic engine's exact Eq. 1 cost
        inst = UniformWorkload(d=2, n=120, mu=10).sample_seeded(6)
        classic = run("first_fit", inst)
        svc = PlacementService(policy="first_fit", capacity=inst.capacity)
        assignment = {}
        for item in inst.items:
            assignment[item.uid] = svc.place(
                item.size, departure=item.departure, at=item.arrival,
                item_id=item.uid,
            )
        svc.advance(max(i.departure for i in inst.items))
        assert assignment == dict(classic.assignment)
        assert svc.cost == pytest.approx(classic.cost, abs=1e-9)
        assert svc.live_items == 0 and svc.open_bins == 0

    def test_next_fit_service_keeps_no_release_audit(self):
        # a service lives indefinitely, so next_fit's O(bins-opened)
        # Theorem 4 bookkeeping must stay switched off for its lifetime
        svc = PlacementService(policy="next_fit", capacity=4.0)
        for k in range(50):
            svc.place(3.0, at=float(k), duration=2.0)  # every item: new bin
        assert svc.stats().bins_opened == 50
        assert svc._algorithm.release_log == []
        assert svc._algorithm.release_times == {}

    def test_collector_integration(self):
        col = StatsCollector()
        svc = PlacementService(capacity=10.0, collector=col)
        svc.place(5.0, duration=1.0)
        svc.place(6.0, duration=2.0)
        svc.advance(5.0)
        stats = col.snapshot()
        assert stats.arrivals == 2 and stats.departures == 2
        assert stats.bins_opened == 2
        assert stats.peak_live_items == 2
        assert svc.stats().events == 4


class TestSnapshotRestore:
    def _drive(self, svc, seed):
        """A deterministic mixed workload of places/departs/advances."""
        rng = np.random.default_rng(seed)
        decisions = []
        for k in range(60):
            # advance first, so the pool of live items is settled before
            # the next action is drawn (a pre-drawn uid could otherwise
            # depart on schedule during the advance)
            fired = svc.advance(svc.now + float(rng.uniform(0.0, 0.5)))
            decisions.append(("advance", fired))
            if svc.live_items and rng.random() < 0.25:
                live = sorted(svc._items)
                uid = int(live[int(rng.integers(len(live)))])
                closed = svc.depart(uid)
                decisions.append(("depart", uid, closed))
            else:
                size = rng.integers(1, 40, size=2).astype(float)
                dur = float(rng.uniform(0.5, 4.0)) if rng.random() < 0.8 else None
                bin_ = svc.place(size, duration=dur)
                decisions.append(("place", bin_))
        return decisions

    @pytest.mark.parametrize("policy", SNAPSHOT_POLICIES)
    def test_restore_mid_stream_is_bit_identical(self, policy):
        a = PlacementService(policy=policy, capacity=100.0, d=2, seed=7)
        self._drive(a, seed=1)
        # force a full JSON round trip, as a file on disk would
        state = json.loads(json.dumps(a.snapshot()))
        b = PlacementService.restore(state)
        assert b.snapshot() == a.snapshot()
        assert b.cost == a.cost and b.now == a.now
        # identical *future* decisions, including RNG position
        da = self._drive(a, seed=2)
        db = self._drive(b, seed=2)
        assert da == db
        assert a.snapshot() == b.snapshot()
        assert a.cost == b.cost

    def test_restore_rejects_wrong_schema(self):
        with pytest.raises(ConfigurationError):
            PlacementService.restore({"schema": "bogus/v9"})

    def test_snapshot_file_round_trip_and_checksum(self, tmp_path):
        svc = PlacementService(policy="move_to_front", capacity=50.0, d=1)
        svc.place(10.0, duration=5.0)
        svc.place(20.0, at=1.0)
        path = str(tmp_path / "svc.json")
        assert svc.snapshot_to(path) == path
        back = PlacementService.restore_from(path)
        assert back.snapshot() == svc.snapshot()
        # tampering must be detected
        doc = json.loads(Path(path).read_text())
        doc["state"]["cost_closed"] = 999.0
        with open(path, "w") as fh:
            json.dump(doc, fh)
        with pytest.raises(ConfigurationError):
            PlacementService.restore_from(path)


class TestServeLoop:
    def test_protocol_round_trip(self, tmp_path):
        svc = PlacementService(policy="first_fit", capacity=10.0, d=2)
        out = []
        snap = str(tmp_path / "snap.json")
        reqs = [
            '{"op": "place", "size": [3, 4], "duration": 5}',
            '',  # blank lines are skipped
            '{"op": "place", "size": [9, 9], "at": 1.0, "item_id": 77}',
            '{"op": "advance", "to": 10}',
            '{"op": "depart", "item_id": 77}',
            '{"op": "stats"}',
            json.dumps({"op": "snapshot", "path": snap}),
            '{"op": "quit"}',
        ]
        handled = serve_loop(svc, reqs, out.append)
        assert handled == 7
        resp = [json.loads(line) for line in out]
        assert resp[0] == {"ok": True, "bin": 0, "item_id": 0, "now": 0.0}
        assert resp[1]["bin"] == 1 and resp[1]["item_id"] == 77
        assert resp[2] == {"ok": True, "departed": 1, "now": 10.0}
        assert resp[3] == {"ok": True, "closed": True, "now": 10.0}
        assert resp[4]["ok"] and resp[4]["stats"]["arrivals"] == 2
        assert resp[5] == {"ok": True, "path": snap}
        assert resp[6] == {"ok": True, "bye": True}
        restored = PlacementService.restore_from(snap)
        assert restored.now == 10.0

    def test_errors_do_not_kill_the_loop(self):
        svc = PlacementService(capacity=10.0)
        out = []
        reqs = [
            'garbage',
            '{"op": "warp"}',
            '{"op": "place", "size": 99}',       # oversized
            '{"op": "place"}',                   # missing size
            '{"op": "place", "size": 1.0}',      # still fine afterwards
        ]
        assert serve_loop(svc, reqs, out.append) == 5
        resp = [json.loads(line) for line in out]
        assert [r["ok"] for r in resp] == [False, False, False, False, True]


class TestServeCLI:
    def test_serve_command_end_to_end(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        snap = str(tmp_path / "exit.json")
        monkeypatch.setattr("sys.stdin", io.StringIO(
            '{"op": "place", "size": [2.0, 2.0], "duration": 3}\n'
            '{"op": "stats"}\n'
        ))
        rc = main(["serve", "--policy", "first_fit", "--capacity", "8",
                   "--d", "2", "--snapshot-on-exit", snap])
        assert rc == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert lines[0]["ok"] and lines[0]["bin"] == 0
        assert lines[1]["stats"]["arrivals"] == 1
        # the exit snapshot restores into a live service
        restored = PlacementService.restore_from(snap)
        assert restored.live_items == 1

        # and --restore picks it straight back up
        monkeypatch.setattr("sys.stdin", io.StringIO('{"op": "stats"}\n'))
        rc = main(["serve", "--restore", snap])
        assert rc == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert lines[0] == {"ok": True, "restored": snap}
        assert lines[1]["live_items"] == 1
