"""Tests for the workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.workloads.base import generate_batch, iter_batch
from repro.workloads.correlated import CorrelatedWorkload
from repro.workloads.distributions import (
    DirichletSize,
    ExponentialDuration,
    LognormalDuration,
    ParetoDuration,
    UniformDuration,
    UniformIntegerSize,
)
from repro.workloads.poisson import PoissonWorkload
from repro.workloads.trace import DEFAULT_VM_CATALOGUE, CloudTraceWorkload, VMType
from repro.workloads.uniform import UniformWorkload


class TestUniformWorkload:
    def test_paper_ranges(self):
        gen = UniformWorkload(d=2, n=100, mu=10, T=100, B=20)
        inst = gen.sample_seeded(0)
        assert inst.n == 100 and inst.d == 2
        for it in inst:
            assert 0 <= it.arrival <= 100 - 10
            assert 1 <= it.duration <= 10
            assert np.all((1 <= it.size) & (it.size <= 20))
            assert float(it.arrival).is_integer()
            assert float(it.duration).is_integer()

    def test_capacity_is_B(self):
        inst = UniformWorkload(d=3, n=10, mu=2, T=10, B=7).sample_seeded(0)
        assert np.allclose(inst.capacity, 7.0)

    def test_mu_at_most_parameter(self):
        inst = UniformWorkload(d=1, n=200, mu=5, T=100, B=10).sample_seeded(1)
        assert inst.mu <= 5.0

    def test_mu_one_all_unit_durations(self):
        inst = UniformWorkload(d=1, n=50, mu=1, T=100, B=10).sample_seeded(2)
        assert all(it.duration == 1.0 for it in inst)

    def test_items_sorted_by_arrival(self):
        inst = UniformWorkload(d=1, n=100, mu=5, T=50, B=10).sample_seeded(3)
        arrivals = [it.arrival for it in inst]
        assert arrivals == sorted(arrivals)

    def test_same_seed_same_instance(self):
        gen = UniformWorkload(d=2, n=30, mu=5, T=30, B=10)
        a = gen.sample_seeded(9)
        b = gen.sample_seeded(9)
        assert a.to_json() == b.to_json()

    def test_different_seed_different_instance(self):
        gen = UniformWorkload(d=2, n=30, mu=5, T=30, B=10)
        assert gen.sample_seeded(1).to_json() != gen.sample_seeded(2).to_json()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(d=0),
            dict(n=0),
            dict(mu=0),
            dict(B=0),
            dict(mu=1000, T=1000),
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            UniformWorkload(**kwargs)

    def test_describe_exposes_parameters(self):
        desc = UniformWorkload(d=2, n=30, mu=5, T=30, B=10).describe()
        assert desc["d"] == 2 and desc["B"] == 10


class TestBatchHelpers:
    def test_batch_count(self):
        gen = UniformWorkload(d=1, n=10, mu=2, T=10, B=5)
        assert len(generate_batch(gen, 7, seed=0)) == 7

    def test_batch_instances_independent(self):
        gen = UniformWorkload(d=1, n=10, mu=2, T=10, B=5)
        batch = generate_batch(gen, 4, seed=0)
        assert len({inst.to_json() for inst in batch}) > 1

    def test_batch_reproducible(self):
        gen = UniformWorkload(d=1, n=10, mu=2, T=10, B=5)
        a = [i.to_json() for i in generate_batch(gen, 5, seed=3)]
        b = [i.to_json() for i in generate_batch(gen, 5, seed=3)]
        assert a == b

    def test_iter_batch_lazy(self):
        gen = UniformWorkload(d=1, n=10, mu=2, T=10, B=5)
        it = iter_batch(gen, 3, seed=0)
        assert next(it).n == 10


class TestDistributions:
    def test_uniform_duration_bounds(self, rng):
        d = UniformDuration(low=2, high=9)
        vals = d.draw(rng, 500)
        assert vals.min() >= 2 and vals.max() <= 9

    def test_exponential_clipped(self, rng):
        d = ExponentialDuration(mean=5, floor=1, cap=20)
        vals = d.draw(rng, 500)
        assert vals.min() >= 1 and vals.max() <= 20

    def test_lognormal_clipped(self, rng):
        d = LognormalDuration(floor=1, cap=50)
        vals = d.draw(rng, 500)
        assert vals.min() >= 1 and vals.max() <= 50

    def test_pareto_heavy_tail(self, rng):
        d = ParetoDuration(alpha=1.1, floor=1, cap=10_000)
        vals = d.draw(rng, 3000)
        assert vals.max() > 50  # the tail actually reaches out

    def test_uniform_integer_size_range(self, rng):
        s = UniformIntegerSize(B=12)
        vals = s.draw(rng, 200, 3)
        assert vals.shape == (200, 3)
        assert vals.min() >= 1 and vals.max() <= 12

    def test_dirichlet_size_peak_is_magnitude(self, rng):
        s = DirichletSize(min_mag=0.2, max_mag=0.8)
        vals = s.draw(rng, 300, 4)
        peaks = vals.max(axis=1)
        assert peaks.min() >= 0.2 - 1e-9 and peaks.max() <= 0.8 + 1e-9

    @pytest.mark.parametrize(
        "ctor",
        [
            lambda: UniformDuration(low=0),
            lambda: ExponentialDuration(mean=-1),
            lambda: LognormalDuration(log_sigma=0),
            lambda: ParetoDuration(alpha=0),
            lambda: UniformIntegerSize(B=0),
            lambda: DirichletSize(min_mag=0),
        ],
    )
    def test_invalid_distribution_params(self, ctor):
        with pytest.raises(ConfigurationError):
            ctor()


class TestPoissonWorkload:
    def test_basic_sample(self, rng):
        gen = PoissonWorkload(d=2, rate=0.5, horizon=100)
        inst = gen.sample(rng)
        assert inst.d == 2
        assert all(0 <= it.arrival <= 100 for it in inst)

    def test_min_items_floor(self, rng):
        gen = PoissonWorkload(d=1, rate=0.0001, horizon=1, min_items=3)
        assert gen.sample(rng).n >= 3

    def test_capacity_follows_size_sampler(self):
        int_gen = PoissonWorkload(d=2, sizes=UniformIntegerSize(B=50))
        assert np.allclose(int_gen.capacity, 50.0)
        unit_gen = PoissonWorkload(d=2, sizes=DirichletSize())
        assert np.allclose(unit_gen.capacity, 1.0)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            PoissonWorkload(rate=0)
        with pytest.raises(ConfigurationError):
            PoissonWorkload(min_items=0)

    def test_simulatable(self, rng):
        from repro.simulation.runner import run

        gen = PoissonWorkload(d=2, rate=0.3, horizon=60, sizes=DirichletSize())
        run("move_to_front", gen.sample(rng), validate=True)


class TestCorrelatedWorkload:
    def test_rho_increases_correlation(self):
        rng = np.random.default_rng(0)
        lo = CorrelatedWorkload(d=3, n=2000, rho=0.0).empirical_correlation(rng)
        rng = np.random.default_rng(0)
        hi = CorrelatedWorkload(d=3, n=2000, rho=0.9).empirical_correlation(rng)
        assert hi > lo + 0.3

    def test_sizes_within_range(self, rng):
        gen = CorrelatedWorkload(d=2, n=300, rho=0.5, min_size=0.1, max_size=0.6)
        inst = gen.sample(rng)
        sizes = np.stack([it.size for it in inst])
        assert sizes.min() >= 0.1 - 1e-9 and sizes.max() <= 0.6 + 1e-9

    def test_invalid_rho(self):
        with pytest.raises(ConfigurationError):
            CorrelatedWorkload(rho=1.0)
        with pytest.raises(ConfigurationError):
            CorrelatedWorkload(rho=-0.1)


class TestCloudTraceWorkload:
    def test_basic_sample(self, rng):
        gen = CloudTraceWorkload(days=1, base_rate=3.0)
        inst = gen.sample(rng)
        assert inst.d == 2
        assert inst.n > 10

    def test_demands_from_catalogue(self, rng):
        gen = CloudTraceWorkload(days=1, base_rate=2.0, batch_mean=1.0)
        inst = gen.sample(rng)
        shapes = {tuple(t.demand) for t in DEFAULT_VM_CATALOGUE}
        for it in inst:
            assert tuple(it.size) in shapes

    def test_lifetimes_clipped(self, rng):
        gen = CloudTraceWorkload(days=1, min_lifetime=0.5, max_lifetime=10.0)
        inst = gen.sample(rng)
        for it in inst:
            assert 0.5 <= it.duration <= 10.0 + 1e-9

    def test_custom_catalogue_dimensionality(self, rng):
        cat = (VMType("a", (0.2, 0.2, 0.2), 1.0), VMType("b", (0.5, 0.1, 0.3), 1.0))
        gen = CloudTraceWorkload(catalogue=cat, days=1, base_rate=2.0)
        assert gen.sample(rng).d == 3

    def test_mixed_catalogue_rejected(self):
        cat = (VMType("a", (0.2,), 1.0), VMType("b", (0.5, 0.1), 1.0))
        with pytest.raises(ConfigurationError):
            CloudTraceWorkload(catalogue=cat)

    def test_vm_type_validation(self):
        with pytest.raises(ConfigurationError):
            VMType("bad", (1.5,), 1.0)
        with pytest.raises(ConfigurationError):
            VMType("bad", (0.5,), 0.0)

    def test_simulatable(self, rng):
        from repro.simulation.runner import run

        inst = CloudTraceWorkload(days=1, base_rate=2.0).sample(rng)
        run("move_to_front", inst, validate=True)
