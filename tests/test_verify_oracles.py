"""Differential oracles: cost recomputation, instrumented twin, sweep paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from repro.core.instance import Instance
from repro.simulation.runner import run
from repro.verify.generators import corpus_list
from repro.verify.oracles import (
    cost_check,
    eq1_cost,
    instrumented_equality_check,
    sweep_equality_check,
)


def test_eq1_cost_hand_computed():
    """Two bins; bin 0's member intervals overlap, bin 1's leave a gap.

    Bin 0 holds [0,4) and [1,3): union length 4.  Bin 1 holds [2,6)
    alone: length 4.  A *naive* sum of durations would give 4+2+4 = 10;
    Eq. 1 says 8.
    """
    inst = Instance.from_tuples([
        (0.0, 4.0, [0.5]),
        (1.0, 3.0, [0.4]),
        (2.0, 6.0, [0.7]),
    ])
    assert eq1_cost(inst, {0: 0, 1: 0, 2: 1}) == pytest.approx(8.0)
    # every item in its own bin: cost is the plain sum of durations
    assert eq1_cost(inst, {0: 0, 1: 1, 2: 2}) == pytest.approx(10.0)


@pytest.mark.parametrize("policy", PAPER_ALGORITHMS)
def test_cost_check_on_corpus(policy):
    for entry in corpus_list(8, seed=41):
        kwargs = {"seed": 0} if policy == "random_fit" else {}
        packing = run(make_algorithm(policy, **kwargs), entry.instance)
        assert cost_check(packing) == []
        assert eq1_cost(entry.instance, packing.assignment) == pytest.approx(
            packing.cost
        )


@pytest.mark.parametrize("policy", PAPER_ALGORITHMS)
def test_instrumented_engine_is_equal(policy):
    entry = corpus_list(5, seed=42)[3]
    assert instrumented_equality_check(entry.instance, policy, seed=0) == []


def test_sweep_serial_equals_worker_path():
    instances = [e.instance for e in corpus_list(4, seed=43)]
    violations = sweep_equality_check(instances, ["move_to_front", "first_fit", "next_fit"])
    assert violations == []


def test_eq1_cost_is_permutation_invariant():
    """Relabeling bins never changes the Eq. 1 cost."""
    inst = corpus_list(2, seed=44)[1].instance
    packing = run(make_algorithm("first_fit"), inst)
    relabeled = {uid: -b - 1 for uid, b in packing.assignment.items()}
    assert eq1_cost(inst, relabeled) == pytest.approx(packing.cost)
