"""Golden-pin determinism tests for the adaptive adversaries.

The induced instance of an ``(attack, policy, seed)`` triple is a pure
function of that triple: the driver derives the attack's RNG from a
``SeedSequence`` and the live engine is deterministic.  These pins are
load-bearing exactly like the workload-generator pins in
``test_workload_golden.py`` — the must-exceed scenarios in every
``repro verify`` profile and the ``adversary`` bench suite assume a
given triple is the *same instance forever*.  A failing test here means
an attack's RNG consumption or emission order changed; either restore
it or consciously re-pin (and note it in CHANGES.md).
"""

from __future__ import annotations

import pytest

from repro.adversaries import AdversaryDriver, AttackConfig, make_adversary
from tests.test_workload_golden import stream_digest

# small explicit sizes so each run takes milliseconds; determinism is a
# property of the code path, not the construction size
_CONFIGS = {
    "duration_revealing": AttackConfig(mu=2.0, d=2, rounds=3),
    "next_fit_churner": AttackConfig(mu=2.0, d=1, rounds=4),
    "leader_targeting": AttackConfig(mu=4.0, d=1, rounds=5),
    "best_fit_amplifier": AttackConfig(mu=1.0, d=1, rounds=4),
    "null_adversary": AttackConfig(mu=4.0, d=2, rounds=10),
}

#: (attack, seed) -> pinned digest of the induced item stream.
GOLDEN = {
    ("duration_revealing", 0): "ad710f608b8699f4",
    ("duration_revealing", 7): "bb135e47af5ed3b3",
    ("next_fit_churner", 0): "166639037077c84a",
    ("next_fit_churner", 7): "54c75b1b2e35d3ce",
    ("leader_targeting", 0): "7d10e6d220df32c4",
    ("leader_targeting", 7): "2cca3763fc72e894",
    ("best_fit_amplifier", 0): "f69a14029f6ac9dc",
    ("best_fit_amplifier", 7): "f69a14029f6ac9dc",
    ("null_adversary", 0): "1368346551e14e55",
    ("null_adversary", 7): "83991ae59d46d49d",
}


def _induced(attack: str, seed: int):
    adversary = make_adversary(attack, _CONFIGS[attack])
    return AdversaryDriver(adversary, seed=seed).run().instance


@pytest.mark.parametrize("attack,seed", sorted(GOLDEN))
def test_induced_stream_is_pinned(attack, seed):
    assert stream_digest(_induced(attack, seed)) == GOLDEN[(attack, seed)]


@pytest.mark.parametrize("attack", sorted(_CONFIGS))
def test_same_seed_is_repeatable(attack):
    assert stream_digest(_induced(attack, 3)) == stream_digest(_induced(attack, 3))


@pytest.mark.parametrize("attack", sorted(_CONFIGS))
def test_different_seeds_differ_when_randomized(attack):
    """Distinct seeds yield distinct streams for the randomized attacks.

    ``best_fit_amplifier`` is a fully deterministic construction (it
    draws nothing from its RNG), so its streams legitimately coincide —
    the golden table above pins both seeds to the same digest.
    """
    a = stream_digest(_induced(attack, 0))
    b = stream_digest(_induced(attack, 1))
    if attack == "best_fit_amplifier":
        assert a == b
    else:
        assert a != b
