"""Tests for the sweep harness and ratio estimators."""

from __future__ import annotations

import pytest

from repro.algorithms.registry import make_algorithm
from repro.analysis.ratios import ratio_bracket, ratio_to_exact_opt, ratio_to_lower_bound
from repro.analysis.sweep import sweep_cell, sweep_grid
from repro.simulation.runner import run
from repro.workloads.base import generate_batch
from repro.workloads.uniform import UniformWorkload

ALGOS = ["move_to_front", "first_fit", "next_fit"]


@pytest.fixture(scope="module")
def batch():
    gen = UniformWorkload(d=2, n=60, mu=6, T=40, B=10)
    return generate_batch(gen, 8, seed=0)


class TestRatios:
    def test_ratio_at_least_one_ish(self, batch):
        # ratio vs a *lower* bound on OPT is >= cost/OPT >= 1
        packing = run("move_to_front", batch[0])
        assert ratio_to_lower_bound(packing) >= 1.0 - 1e-9

    def test_exact_ratio_at_least_one(self):
        inst = UniformWorkload(d=2, n=12, mu=3, T=10, B=4).sample_seeded(5)
        packing = run("first_fit", inst)
        assert ratio_to_exact_opt(packing) >= 1.0 - 1e-9

    def test_lower_bound_ratio_upper_bounds_exact(self):
        inst = UniformWorkload(d=2, n=12, mu=3, T=10, B=4).sample_seeded(6)
        packing = run("first_fit", inst)
        assert ratio_to_lower_bound(packing) >= ratio_to_exact_opt(packing) - 1e-9

    def test_bracket_ordering(self, batch):
        packing = run("first_fit", batch[0])
        lo, hi = ratio_bracket(packing)
        assert lo <= hi
        assert hi == pytest.approx(ratio_to_lower_bound(packing))


class TestSweepCell:
    def test_all_algorithms_measured(self, batch):
        cell = sweep_cell(ALGOS, batch, params={"d": 2, "mu": 6})
        assert set(cell.stats) == set(ALGOS)
        for name in ALGOS:
            assert len(cell.ratios[name]) == len(batch)

    def test_ratios_at_least_one(self, batch):
        cell = sweep_cell(ALGOS, batch)
        for vals in cell.ratios.values():
            assert all(v >= 1.0 - 1e-9 for v in vals)

    def test_ranking_sorted_by_mean(self, batch):
        cell = sweep_cell(ALGOS, batch)
        ranking = cell.ranking()
        means = [cell.stats[a].mean for a in ranking]
        assert means == sorted(means)

    def test_params_stored(self, batch):
        cell = sweep_cell(ALGOS, batch, params={"d": 2})
        assert cell.params == {"d": 2}

    def test_within_theory(self, batch):
        cell = sweep_cell(ALGOS, batch)
        checks = cell.within_theory(mu=6, d=2)
        assert checks and all(checks.values())

    def test_algorithm_kwargs_forwarded(self, batch):
        cell = sweep_cell(
            ["random_fit"], batch, algorithm_kwargs={"random_fit": {"seed": 3}}
        )
        cell2 = sweep_cell(
            ["random_fit"], batch, algorithm_kwargs={"random_fit": {"seed": 3}}
        )
        assert cell.ratios == cell2.ratios


class TestSweepGrid:
    def test_grid_shape(self):
        gen_a = UniformWorkload(d=1, n=30, mu=3, T=20, B=5)
        gen_b = UniformWorkload(d=2, n=30, mu=3, T=20, B=5)
        cells = {
            (1,): generate_batch(gen_a, 3, seed=0),
            (2,): generate_batch(gen_b, 3, seed=1),
        }
        results = sweep_grid(ALGOS, cells, param_names=("d",))
        assert len(results) == 2
        assert results[0].params == {"d": 1}
        assert results[1].params == {"d": 2}
