"""Tests for quantised billing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.core.instance import Instance
from repro.core.items import Item
from repro.core.packing import Packing
from repro.simulation.billing import (
    QuantumAwareMoveToFront,
    billed_cost,
    billing_overhead,
    summarize_billing,
)
from repro.simulation.runner import run
from repro.workloads.uniform import UniformWorkload


@pytest.fixture
def simple_packing():
    # one bin active 2.5 units, one active 0.5 units
    inst = Instance(
        [
            Item(0.0, 2.5, np.array([0.6]), 0),
            Item(0.0, 0.5, np.array([0.6]), 1),
        ]
    )
    return Packing.from_assignment(inst, {0: 0, 1: 1}, algorithm="hand")


class TestBilledCost:
    def test_continuous_is_paper_cost(self, simple_packing):
        assert billed_cost(simple_packing, 0.0) == pytest.approx(3.0)

    def test_hourly_rounds_up(self, simple_packing):
        # 2.5 -> 3 quanta, 0.5 -> 1 quantum
        assert billed_cost(simple_packing, 1.0) == pytest.approx(4.0)

    def test_quantum_boundary_exact(self):
        inst = Instance([Item(0.0, 2.0, np.array([0.5]), 0)])
        packing = Packing.from_assignment(inst, {0: 0})
        assert billed_cost(packing, 1.0) == pytest.approx(2.0)  # no rounding noise

    def test_minimum_one_quantum_per_bin(self):
        inst = Instance([Item(0.0, 0.01, np.array([0.5]), 0)])
        packing = Packing.from_assignment(inst, {0: 0})
        assert billed_cost(packing, 1.0) == pytest.approx(1.0)

    def test_negative_quantum_rejected(self, simple_packing):
        with pytest.raises(ConfigurationError):
            billed_cost(simple_packing, -1.0)

    def test_overhead(self, simple_packing):
        assert billing_overhead(simple_packing, 1.0) == pytest.approx(4.0 / 3.0 - 1)

    def test_billed_at_least_continuous(self, uniform_small):
        packing = run("move_to_front", uniform_small)
        for q in (0.5, 1.0, 5.0):
            assert billed_cost(packing, q) >= packing.cost - 1e-9

    def test_summary_fields(self, simple_packing):
        s = summarize_billing(simple_packing, 1.0)
        assert s.billed_cost == pytest.approx(4.0)
        assert s.overhead == pytest.approx(1.0 / 3.0)
        assert s.num_bins == 2


class TestQuantumAwareMF:
    def test_zero_quantum_is_plain_mf(self, uniform_small):
        plain = run("move_to_front", uniform_small)
        aware = run(QuantumAwareMoveToFront(quantum=0.0), uniform_small)
        assert plain.assignment == aware.assignment

    def test_valid_packing(self, uniform_small):
        run(QuantumAwareMoveToFront(quantum=2.0), uniform_small, validate=True)

    def test_is_any_fit(self, uniform_small):
        from tests.test_anyfit_property import assert_any_fit_property

        packing = run(QuantumAwareMoveToFront(quantum=2.0), uniform_small)
        assert_any_fit_property(packing)

    def test_prefers_fresh_quantum(self):
        # bin A opened at t=0, bin B at t=1.5; quantum 2. An item at
        # t=1.6: A has 0.4 paid time left, B has 1.9 -> choose B.
        items = [
            Item(0.0, 5.0, np.array([0.5]), 0),   # opens A
            Item(1.5, 5.0, np.array([0.6]), 1),   # doesn't fit A -> opens B
            Item(1.6, 5.0, np.array([0.2]), 2),   # fits both
        ]
        inst = Instance(items, _skip_sort_check=True)
        packing = run(QuantumAwareMoveToFront(quantum=2.0), inst)
        assert packing.assignment[2] == packing.assignment[1]

    def test_helps_under_quantised_billing(self):
        """Averaged over instances, quantum-awareness should not lose
        under its own billing model."""
        plain_total = aware_total = 0.0
        for seed in range(6):
            inst = UniformWorkload(d=2, n=150, mu=10, T=60, B=10).sample_seeded(seed)
            plain = run("move_to_front", inst)
            aware = run(QuantumAwareMoveToFront(quantum=5.0), inst)
            plain_total += billed_cost(plain, 5.0)
            aware_total += billed_cost(aware, 5.0)
        assert aware_total <= plain_total * 1.05

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QuantumAwareMoveToFront(quantum=-1.0)
