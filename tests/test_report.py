"""Tests for the plain-text report renderers."""

from __future__ import annotations

import pytest

from repro.analysis.report import (
    format_interval_diagram,
    format_series_chart,
    format_table,
)


class TestFormatTable:
    def test_headers_and_rows_present(self):
        out = format_table(["a", "b"], [[1, 2.5], ["x", 3.0]])
        assert "a" in out and "b" in out
        assert "2.500" in out and "x" in out

    def test_title_on_first_line(self):
        out = format_table(["a"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_columns_aligned(self):
        out = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = out.splitlines()
        data = [l for l in lines if "|" not in l and "-+-" not in l]
        widths = {len(l) for l in lines if "short" in l or "longer" in l}
        assert len(widths) == 1

    def test_custom_float_format(self):
        out = format_table(["x"], [[1.23456]], float_fmt="{:.1f}")
        assert "1.2" in out and "1.23" not in out

    def test_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out


class TestSeriesChart:
    def test_contains_values_and_bars(self):
        out = format_series_chart([1, 2], {"alg": [1.0, 2.0]}, title="T")
        assert "T" in out and "alg" in out
        assert "#" in out

    def test_empty_series(self):
        assert format_series_chart([], {}, title="E") == "E"

    def test_bar_lengths_monotone(self):
        out = format_series_chart([1, 2], {"a": [1.0, 2.0]})
        bars = [l.count("#") for l in out.splitlines() if "#" in l]
        assert bars[0] < bars[1]

    def test_handles_short_series(self):
        out = format_series_chart([1, 2, 3], {"a": [1.0]})
        assert "x = 3" in out


class TestIntervalDiagram:
    def test_basic_rendering(self):
        out = format_interval_diagram(
            {"bin 0": [(0, 5, "lead")], "bin 1": [(5, 10, "lead")]}, horizon=10
        )
        assert "bin 0" in out and "bin 1" in out
        assert "= = lead" in out or "lead" in out

    def test_distinct_markers_per_kind(self):
        out = format_interval_diagram(
            {"b": [(0, 5, "x"), (5, 10, "y")]}, horizon=10
        )
        # two different fill characters appear
        body = [l for l in out.splitlines() if l.startswith("b")][0]
        fills = {c for c in body if c not in " |b"}
        assert len(fills) == 2

    def test_custom_markers(self):
        out = format_interval_diagram(
            {"b": [(0, 10, "k")]}, horizon=10, markers={"k": "@"}
        )
        assert "@" in out

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            format_interval_diagram({}, horizon=0)

    def test_interval_clipped_to_horizon(self):
        out = format_interval_diagram({"b": [(0, 100, "k")]}, horizon=10, width=20)
        body = [l for l in out.splitlines() if l.startswith("b")][0]
        assert len(body) <= len("b |") + 20 + 1
