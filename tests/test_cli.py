"""Tests for the command-line interface."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main


def test_table2(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out and "B = 100" in out


def test_table1_small(capsys):
    assert main(["table1", "--ks", "2", "--d", "1", "--mu", "2"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "thm5_anyfit" in out


def test_figure1(capsys):
    assert main(["figure1"]) == 0
    assert "Figure 1" in capsys.readouterr().out


def test_figure2(capsys):
    assert main(["figure2"]) == 0
    assert "Figure 2" in capsys.readouterr().out


def test_figure3(capsys):
    assert main(["figure3", "--d", "1", "--k", "2", "--mu", "2"]) == 0
    assert "Figure 3" in capsys.readouterr().out


def test_figure4_smoke(capsys):
    assert main(["figure4", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out


def test_compare(capsys):
    assert main(["compare", "--n", "50", "--d", "2", "--mu", "5"]) == 0
    out = capsys.readouterr().out
    assert "move_to_front" in out and "worst_fit" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_figure3_rejects_unknown_algorithm():
    with pytest.raises(SystemExit):
        main(["figure3", "--algorithm", "nope"])


def test_figure4_csv_export(capsys, tmp_path):
    path = str(tmp_path / "fig4.csv")
    assert main(["figure4", "--scale", "smoke", "--csv", path]) == 0
    text = Path(path).read_text()
    assert text.startswith("d,mu,algorithm")
