"""Tests for the Table 1 bound formulas."""

from __future__ import annotations

import math

import pytest

from repro.analysis.theory import (
    TABLE1,
    any_fit_lower_bound,
    first_fit_upper_bound,
    lower_bound,
    move_to_front_lower_bound,
    move_to_front_upper_bound,
    next_fit_lower_bound,
    next_fit_upper_bound,
    upper_bound,
)
from repro.core.errors import ConfigurationError


class TestFormulas:
    def test_any_fit_lower(self):
        assert any_fit_lower_bound(5, 2) == 12

    def test_mtf_upper(self):
        assert move_to_front_upper_bound(5, 2) == 23

    def test_mtf_upper_d1_improves_prior(self):
        # (2mu+1)*1 + 1 = 2mu + 2 < 6mu + 7 for all mu >= 1
        for mu in (1, 2, 10, 100):
            assert move_to_front_upper_bound(mu, 1) == 2 * mu + 2
            assert move_to_front_upper_bound(mu, 1) < 6 * mu + 7

    def test_mtf_lower_max_form(self):
        assert move_to_front_lower_bound(5, 1) == 10  # 2mu dominates at d=1
        assert move_to_front_lower_bound(5, 3) == 18  # (mu+1)d dominates

    def test_ff_upper(self):
        assert first_fit_upper_bound(5, 2) == 15

    def test_nf_bounds_nearly_tight(self):
        for mu in (1, 2, 10):
            for d in (1, 2, 5):
                assert next_fit_upper_bound(mu, d) - next_fit_lower_bound(mu, d) == 1

    def test_d1_reductions_match_prior_work(self):
        mu = 7
        assert any_fit_lower_bound(mu, 1) == mu + 1  # [22, 28]
        assert next_fit_lower_bound(mu, 1) == 2 * mu  # [32]
        assert next_fit_upper_bound(mu, 1) == 2 * mu + 1  # [18]


class TestConsistency:
    @pytest.mark.parametrize("mu", [1, 2, 5, 10, 100])
    @pytest.mark.parametrize("d", [1, 2, 5])
    @pytest.mark.parametrize("algo", sorted(TABLE1))
    def test_lower_at_most_upper(self, algo, mu, d):
        assert lower_bound(algo, mu, d) <= upper_bound(algo, mu, d)

    @pytest.mark.parametrize("mu", [1, 5, 100])
    @pytest.mark.parametrize("d", [1, 2, 5])
    def test_bounded_algorithms_dominate_family_lower(self, mu, d):
        # every specific Any Fit algorithm's lower bound is at least the
        # family-wide (mu+1)d
        fam = lower_bound("any_fit", mu, d)
        for algo in ("move_to_front", "first_fit", "next_fit"):
            assert lower_bound(algo, mu, d) >= fam

    def test_best_fit_unbounded(self):
        assert math.isinf(lower_bound("best_fit", 5, 2))
        assert math.isinf(upper_bound("best_fit", 5, 2))

    def test_any_fit_family_has_no_upper(self):
        assert math.isinf(upper_bound("any_fit", 5, 2))

    def test_provenance_strings_present(self):
        for entry in TABLE1.values():
            assert entry.lower_source and entry.upper_source


class TestValidation:
    def test_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            lower_bound("magic_fit", 5, 2)

    def test_invalid_mu(self):
        with pytest.raises(ConfigurationError):
            upper_bound("first_fit", 0.5, 2)

    def test_invalid_d(self):
        with pytest.raises(ConfigurationError):
            upper_bound("first_fit", 5, 0)
