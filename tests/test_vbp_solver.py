"""Unit tests for the static vector-bin-packing solver."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SolverLimitError
from repro.optimum.vbp_solver import (
    best_fit_decreasing,
    first_fit_decreasing,
    load_lower_bound,
    solve_exact,
)

CAP1 = np.ones(1)
CAP2 = np.ones(2)


def vecs(*vals):
    """1-D sizes from scalars."""
    return [np.array([v]) for v in vals]


def brute_force_min_bins(sizes, capacity) -> int:
    """Reference: try all set partitions (tiny n only)."""
    n = len(sizes)
    if n == 0:
        return 0
    best = n

    def partitions(seq):
        if not seq:
            yield []
            return
        head, rest = seq[0], seq[1:]
        for p in partitions(rest):
            for i in range(len(p)):
                yield p[:i] + [[head] + p[i]] + p[i + 1 :]
            yield p + [[head]]

    slack = capacity + 1e-9
    for p in partitions(list(range(n))):
        ok = all(
            np.all(sum((sizes[i] for i in group), np.zeros_like(capacity)) <= slack)
            for group in p
        )
        if ok:
            best = min(best, len(p))
    return best


class TestHeuristics:
    def test_ffd_empty(self):
        assert first_fit_decreasing([], CAP1) == []

    def test_ffd_single(self):
        assert first_fit_decreasing(vecs(0.5), CAP1) == [[0]]

    def test_ffd_classic(self):
        bins = first_fit_decreasing(vecs(0.6, 0.5, 0.4, 0.3), CAP1)
        # sorted: 0.6, 0.5, 0.4, 0.3 -> [0.6+0.4], [0.5+0.3] -> 2 bins
        assert len(bins) == 2

    def test_ffd_covers_all_items(self):
        bins = first_fit_decreasing(vecs(0.2, 0.9, 0.5, 0.7, 0.1), CAP1)
        assert sorted(i for b in bins for i in b) == [0, 1, 2, 3, 4]

    def test_ffd_respects_capacity(self):
        sizes = [np.array([0.4, 0.7]), np.array([0.7, 0.4]), np.array([0.3, 0.3])]
        bins = first_fit_decreasing(sizes, CAP2)
        for b in bins:
            total = sum((sizes[i] for i in b), np.zeros(2))
            assert np.all(total <= 1.0 + 1e-9)

    def test_bfd_covers_all_items(self):
        bins = best_fit_decreasing(vecs(0.2, 0.9, 0.5, 0.7, 0.1), CAP1)
        assert sorted(i for b in bins for i in b) == [0, 1, 2, 3, 4]

    def test_bfd_respects_capacity(self):
        sizes = [np.array([0.4, 0.7]), np.array([0.7, 0.4]), np.array([0.3, 0.3])]
        for b in best_fit_decreasing(sizes, CAP2):
            total = sum((sizes[i] for i in b), np.zeros(2))
            assert np.all(total <= 1.0 + 1e-9)

    def test_nonunit_capacity(self):
        sizes = [np.array([60.0]), np.array([40.0]), np.array([50.0])]
        bins = first_fit_decreasing(sizes, np.array([100.0]))
        assert len(bins) == 2


class TestLoadLowerBound:
    def test_empty(self):
        assert load_lower_bound([], CAP1) == 0

    def test_exact_total(self):
        assert load_lower_bound(vecs(0.5, 0.5), CAP1) == 1

    def test_rounds_up(self):
        assert load_lower_bound(vecs(0.6, 0.6), CAP1) == 2

    def test_max_over_dims(self):
        sizes = [np.array([0.9, 0.1]), np.array([0.9, 0.1])]
        assert load_lower_bound(sizes, CAP2) == 2

    def test_float_noise_guard(self):
        assert load_lower_bound(vecs(*[0.1] * 10), CAP1) == 1


class TestExactSolver:
    def test_empty(self):
        assert solve_exact([], CAP1) == 0

    def test_single(self):
        assert solve_exact(vecs(0.9), CAP1) == 1

    def test_pairing(self):
        assert solve_exact(vecs(0.5, 0.5, 0.5, 0.5), CAP1) == 2

    def test_beats_ffd_when_ffd_suboptimal(self):
        # classic FFD-suboptimal family scaled into [0,1]
        sizes = vecs(0.42, 0.42, 0.34, 0.34, 0.24, 0.24)
        ffd = len(first_fit_decreasing(sizes, CAP1))
        exact = solve_exact(sizes, CAP1)
        assert exact <= ffd
        assert exact == 2  # (0.42+0.34+0.24) twice

    def test_vector_blocking(self):
        sizes = [
            np.array([0.9, 0.1]),
            np.array([0.1, 0.9]),
            np.array([0.5, 0.5]),
        ]
        assert solve_exact(sizes, CAP2) == 2

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force_1d(self, seed):
        rng = np.random.default_rng(seed)
        sizes = [np.array([s]) for s in rng.uniform(0.05, 0.95, size=6)]
        assert solve_exact(sizes, CAP1) == brute_force_min_bins(sizes, CAP1)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force_2d(self, seed):
        rng = np.random.default_rng(100 + seed)
        sizes = [rng.uniform(0.05, 0.95, size=2) for _ in range(6)]
        assert solve_exact(sizes, CAP2) == brute_force_min_bins(sizes, CAP2)

    def test_sandwiched_by_bounds(self):
        rng = np.random.default_rng(9)
        sizes = [rng.uniform(0.05, 0.6, size=3) for _ in range(10)]
        cap = np.ones(3)
        exact = solve_exact(sizes, cap)
        assert load_lower_bound(sizes, cap) <= exact
        assert exact <= len(first_fit_decreasing(sizes, cap))

    def test_node_budget_enforced(self):
        rng = np.random.default_rng(3)
        sizes = [rng.uniform(0.2, 0.4, size=2) for _ in range(18)]
        with pytest.raises(SolverLimitError):
            solve_exact(sizes, CAP2, max_nodes=5)

    @given(
        st.lists(st.floats(0.05, 1.0), min_size=1, max_size=7),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_at_most_item_count_and_at_least_load(self, raw):
        sizes = [np.array([s]) for s in raw]
        exact = solve_exact(sizes, CAP1)
        assert load_lower_bound(sizes, CAP1) <= exact <= len(sizes)
