"""Tests for the clairvoyant extension algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.clairvoyant import AlignmentBestFit, DurationClassifiedFirstFit
from repro.core.errors import ConfigurationError
from repro.core.instance import Instance
from repro.core.items import Item
from repro.simulation.engine import simulate
from repro.simulation.runner import run
from repro.workloads.poisson import PoissonWorkload
from repro.workloads.distributions import DirichletSize, ParetoDuration


class TestDurationClassifiedFirstFit:
    def test_valid_packing(self, uniform_small):
        run(DurationClassifiedFirstFit(), uniform_small, validate=True)

    def test_classes_never_mix(self):
        # short (duration 1) and long (duration 100) items must never
        # share a bin even when they'd fit together
        items = []
        for i in range(4):
            items.append(Item(0.0, 1.0, np.array([0.1]), 2 * i))
            items.append(Item(0.0, 100.0, np.array([0.1]), 2 * i + 1))
        inst = Instance(sorted(items, key=lambda it: it.arrival), _skip_sort_check=True)
        packing = simulate(DurationClassifiedFirstFit(), inst)
        by_uid = {it.uid: it for it in inst.items}
        for rec in packing.bins:
            durations = {by_uid[u].duration for u in rec.item_uids}
            assert durations in ({1.0}, {100.0})

    def test_same_class_items_share(self):
        items = [Item(0.0, 2.0, np.array([0.3]), i) for i in range(3)]
        inst = Instance(items)
        packing = simulate(DurationClassifiedFirstFit(), inst)
        assert packing.num_bins == 1

    def test_base_validation(self):
        with pytest.raises(ConfigurationError):
            DurationClassifiedFirstFit(base=1.0)

    def test_beats_first_fit_under_heavy_load_heavy_tail(self):
        """Duration classification pays off when load is heavy and
        durations heavy-tailed (many bins open anyway, so the alignment
        gain beats the class-separation overhead).  At light load it
        loses - see `examples/clairvoyant_study.py` for the full
        crossover picture."""
        gen = PoissonWorkload(
            d=2,
            rate=25.0,
            horizon=60,
            durations=ParetoDuration(alpha=1.1, floor=1, cap=500),
            sizes=DirichletSize(min_mag=0.1, max_mag=0.9),
        )
        dc_total = ff_total = 0.0
        for seed in range(3):
            inst = gen.sample_seeded(seed)
            dc_total += run(DurationClassifiedFirstFit(base=4.0), inst).cost
            ff_total += run("first_fit", inst).cost
        assert dc_total < ff_total


class TestAlignmentBestFit:
    def test_valid_packing(self, uniform_small):
        run(AlignmentBestFit(), uniform_small, validate=True)

    def test_prefers_aligned_departures(self):
        # two open bins: one with an item departing at 10, one at 2;
        # a new item departing at 10.2 should join the t=10 bin
        items = [
            Item(0.0, 10.0, np.array([0.4]), 0),
            Item(0.0, 2.0, np.array([0.7]), 1),  # forced into a second bin
            Item(1.0, 10.2, np.array([0.2]), 2),
        ]
        inst = Instance(items, _skip_sort_check=True)
        packing = simulate(AlignmentBestFit(), inst)
        assert packing.assignment[2] == packing.assignment[0]

    def test_is_any_fit(self):
        """AlignmentBestFit never opens a bin when one fits."""
        from tests.test_anyfit_property import assert_any_fit_property
        from repro.workloads.uniform import UniformWorkload

        inst = UniformWorkload(d=2, n=80, mu=8, T=50, B=10).sample_seeded(2)
        packing = run(AlignmentBestFit(), inst)
        assert_any_fit_property(packing)
