"""Edge-case and numerical-stress tests across the stack.

Degenerate-but-legal inputs: single items, zero-size demands,
full-capacity items, huge time values, massive simultaneous batches,
float-hostile sizes.  Every algorithm must stay feasible and every
invariant must survive.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from repro.core.errors import InvalidInstanceError
from repro.core.instance import Instance
from repro.core.items import Item
from repro.optimum.lower_bounds import height_lower_bound
from repro.optimum.opt_cost import optimum_cost
from repro.simulation.runner import run


class TestDegenerateInstances:
    @pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
    def test_single_item(self, algorithm):
        inst = Instance([Item(0, 1, np.array([1.0]), 0)])
        packing = run(make_algorithm(algorithm), inst, validate=True)
        assert packing.cost == pytest.approx(1.0)

    @pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
    def test_all_full_capacity_items(self, algorithm):
        inst = Instance([Item(0, 2, np.array([1.0]), i) for i in range(5)])
        packing = run(make_algorithm(algorithm), inst, validate=True)
        assert packing.num_bins == 5

    @pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
    def test_zero_size_items_always_fit(self, algorithm):
        items = [Item(0, 2, np.array([1.0]), 0)] + [
            Item(0, 2, np.array([0.0]), i) for i in range(1, 6)
        ]
        inst = Instance(items)
        packing = run(make_algorithm(algorithm), inst, validate=True)
        # zero-size items fit anywhere; a single bin suffices
        assert packing.num_bins == 1

    def test_all_zero_size_instance(self):
        inst = Instance([Item(0, 2, np.array([0.0]), i) for i in range(4)])
        packing = run("first_fit", inst, validate=True)
        assert packing.num_bins == 1
        # the height LB is 0 but span still lower-bounds cost
        assert height_lower_bound(inst) == pytest.approx(0.0)
        assert packing.cost == pytest.approx(2.0)

    def test_large_times(self):
        t0 = 1e12
        inst = Instance(
            [
                Item(t0, t0 + 1.0, np.array([0.5]), 0),
                Item(t0 + 0.5, t0 + 2.0, np.array([0.6]), 1),
            ],
            _skip_sort_check=True,
        )
        packing = run("move_to_front", inst, validate=True)
        assert packing.cost == pytest.approx(2.5)

    def test_tiny_durations(self):
        inst = Instance(
            [Item(0.0, 1e-9, np.array([0.5]), 0), Item(0.0, 2e-9, np.array([0.5]), 1)]
        )
        packing = run("first_fit", inst, validate=True)
        assert packing.cost > 0

    @pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
    def test_massive_simultaneous_batch(self, algorithm):
        # 200 items arriving at the same instant
        inst = Instance([Item(0.0, 1.0, np.array([0.34, 0.21]), i) for i in range(200)])
        packing = run(make_algorithm(algorithm), inst, validate=True)
        # per-dim packing limit: floor(1/0.34) = 2 items per bin
        assert packing.num_bins == 100

    def test_sequential_no_overlap_chain(self):
        # items abut: [0,1), [1,2), ...; each departure closes the bin
        # (it empties), and closed bins are never reused, so each item
        # opens a fresh bin - yet the cost is identical to sharing one
        # (Section 2.1's idle-bins-are-free equivalence)
        inst = Instance([Item(float(i), float(i + 1), np.array([0.9]), i) for i in range(20)])
        packing = run("move_to_front", inst, validate=True)
        assert packing.num_bins == 20
        assert packing.cost == pytest.approx(20.0)

    def test_exact_opt_on_chain(self):
        inst = Instance([Item(float(i), float(i + 1), np.array([0.9]), i) for i in range(6)])
        assert optimum_cost(inst) == pytest.approx(6.0)


class TestFloatHostility:
    @pytest.mark.parametrize("algorithm", ["first_fit", "move_to_front", "best_fit"])
    def test_repeating_tenths_fill_exactly(self, algorithm):
        # ten 0.1s sum to 1.0000000000000002 in float; the EPS tolerance
        # must let them share a bin
        inst = Instance([Item(0, 1, np.array([0.1]), i) for i in range(10)])
        packing = run(make_algorithm(algorithm), inst, validate=True)
        assert packing.num_bins == 1

    def test_adversarial_thresholds_respected(self):
        # loads of exactly 1 - eps' + eps' = 1.0 must fit; 1.0 + tiny not
        inst = Instance(
            [
                Item(0, 2, np.array([1.0 - 1e-6]), 0),
                Item(0, 2, np.array([1e-6]), 1),
                Item(0, 2, np.array([2e-6]), 2),
            ]
        )
        packing = run("first_fit", inst, validate=True)
        assert packing.assignment[1] == packing.assignment[0]
        assert packing.assignment[2] != packing.assignment[0]

    def test_lower_bound_no_phantom_bins_from_noise(self):
        # 3 * (1/3) == 1.0000000000000002-ish: LB must be 1, not 2
        third = 1.0 / 3.0
        inst = Instance([Item(0, 1, np.array([third]), i) for i in range(3)])
        assert height_lower_bound(inst) == pytest.approx(1.0)


class TestValidationEdges:
    def test_duplicate_uids_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Instance(
                [Item(0, 1, np.array([0.1]), 7), Item(0, 2, np.array([0.1]), 7)]
            )

    def test_one_item_instance_quantities(self):
        inst = Instance([Item(2, 5, np.array([0.4]), 0)])
        assert inst.mu == 1.0
        assert inst.span == 3.0
        assert inst.event_times() == [2, 5]

    def test_instance_with_many_components(self):
        items = [Item(10.0 * i, 10.0 * i + 1, np.array([0.5]), i) for i in range(5)]
        inst = Instance(items, _skip_sort_check=True)
        assert len(inst.active_components()) == 5
        packing = run("next_fit", inst, validate=True)
        assert packing.cost == pytest.approx(5.0)
