"""Tests for the observability layer: metrics, stats, sinks, hooks.

The engine-counter tests use a hand-computed five-item instance so every
counter value is verifiable on paper; the parallel tests assert the
cross-process aggregation invariant (deterministic counters identical
for any worker count).
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.items import Item
from repro.observability import (
    Counter,
    JsonLinesSink,
    MemorySink,
    MetricsRegistry,
    NullSink,
    RunStats,
    StatsCollector,
    Timer,
)
from repro.simulation.engine import Engine, simulate
from repro.simulation.parallel import aggregate_sweep_stats, parallel_sweep
from repro.simulation.runner import run, run_many
from repro.workloads.base import generate_batch
from repro.workloads.uniform import UniformWorkload


# ----------------------------------------------------------------------
# metrics primitives
# ----------------------------------------------------------------------
class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_reset(self):
        c = Counter("x", value=3)
        c.reset()
        assert c.value == 0


class TestTimer:
    def test_context_manager_accumulates(self):
        t = Timer("t")
        with t:
            pass
        with t:
            pass
        assert t.count == 2
        assert t.total_s >= 0.0
        assert t.mean_s == pytest.approx(t.total_s / 2)

    def test_start_stop_returns_elapsed(self):
        t = Timer("t")
        t.start()
        elapsed = t.stop()
        assert elapsed >= 0.0
        assert t.total_s == pytest.approx(elapsed)

    def test_double_start_raises(self):
        t = Timer("t")
        t.start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer("t").stop()

    def test_reset_clears_pending_section(self):
        t = Timer("t")
        t.start()
        t.reset()
        assert t.count == 0
        t.start()  # must not raise after reset
        t.stop()


class TestMetricsRegistry:
    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.timer("b") is reg.timer("b")

    def test_snapshot_is_flat_and_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("bins").inc(3)
        with reg.timer("dispatch"):
            pass
        snap = reg.snapshot()
        assert snap["bins"] == 3
        assert snap["dispatch_count"] == 1
        assert snap["dispatch_s"] >= 0.0
        json.dumps(snap)  # must not raise

    def test_reset_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.counter("a").value == 0


# ----------------------------------------------------------------------
# RunStats serialisation and aggregation
# ----------------------------------------------------------------------
class TestRunStats:
    def test_dict_roundtrip(self):
        s = RunStats(algorithm="ff", runs=1, events=10, arrivals=5, departures=5,
                     bins_opened=3, bins_closed=3, peak_open_bins=2,
                     candidate_scans=4, fit_checks=6,
                     dispatch_time_s=0.25, wall_time_s=0.5, peak_rss_bytes=1024)
        assert RunStats.from_dict(s.to_dict()) == s

    def test_json_roundtrip_ignores_derived_fields(self):
        s = RunStats(algorithm="mf", runs=2, events=4, wall_time_s=2.0)
        data = json.loads(s.to_json())
        assert data["events_per_sec"] == pytest.approx(2.0)
        assert RunStats.from_json(s.to_json()) == s

    def test_events_per_sec_zero_time(self):
        assert RunStats().events_per_sec == 0.0
        assert RunStats().checks_per_scan == 0.0

    def test_aggregate_sums_counters_and_maxes_peaks(self):
        a = RunStats(algorithm="ff", runs=1, events=10, arrivals=5, departures=5,
                     bins_opened=2, bins_closed=2, peak_open_bins=2,
                     candidate_scans=3, fit_checks=5, dispatch_time_s=0.1,
                     wall_time_s=0.2, peak_rss_bytes=100)
        b = RunStats(algorithm="ff", runs=1, events=6, arrivals=3, departures=3,
                     bins_opened=1, bins_closed=1, peak_open_bins=4,
                     candidate_scans=2, fit_checks=2, dispatch_time_s=0.3,
                     wall_time_s=0.4, peak_rss_bytes=50)
        agg = RunStats.aggregate([a, b])
        assert agg.algorithm == "ff"
        assert agg.runs == 2
        assert agg.events == 16
        assert agg.bins_opened == 3
        assert agg.peak_open_bins == 4
        assert agg.fit_checks == 7
        assert agg.dispatch_time_s == pytest.approx(0.4)
        assert agg.wall_time_s == pytest.approx(0.6)
        assert agg.peak_rss_bytes == 100

    def test_aggregate_mixed_algorithms_and_empty(self):
        assert RunStats.aggregate([]) == RunStats()
        agg = RunStats.aggregate([RunStats(algorithm="a", runs=1),
                                  RunStats(algorithm="b", runs=1)])
        assert agg.algorithm == "mixed"

    def test_deterministic_part_zeroes_timings_only(self):
        s = RunStats(algorithm="ff", events=4, dispatch_time_s=1.0,
                     wall_time_s=2.0, peak_rss_bytes=7)
        d = s.deterministic_part()
        assert d.dispatch_time_s == 0.0 and d.wall_time_s == 0.0
        assert d.peak_rss_bytes is None
        assert d.events == 4 and d.algorithm == "ff"


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------
class TestSinks:
    def test_null_sink_is_silent(self):
        sink = NullSink()
        sink.emit("run", {"x": 1})
        sink.close()
        sink.close()  # idempotent

    def test_memory_sink_buffers_by_kind(self):
        sink = MemorySink()
        sink.emit("run", {"x": 1})
        sink.emit("scenario", {"y": 2})
        sink.emit("run", {"x": 3})
        assert [p["x"] for p in sink.by_kind("run")] == [1, 3]

    def test_jsonlines_sink_writes_one_object_per_line(self):
        buf = io.StringIO()
        with JsonLinesSink(buf) as sink:
            sink.emit("run", {"a": 1})
            sink.emit("suite", {"b": 2.5})
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert lines == [{"kind": "run", "a": 1}, {"kind": "suite", "b": 2.5}]

    def test_jsonlines_sink_to_path_appends(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonLinesSink(path) as sink:
            sink.emit("run", {"a": 1})
        with JsonLinesSink(path) as sink:
            sink.emit("run", {"a": 2})
        with open(path, encoding="utf-8") as fh:
            values = [json.loads(line)["a"] for line in fh]
        assert values == [1, 2]

    def test_emit_after_close_raises(self):
        sink = JsonLinesSink(io.StringIO())
        sink.close()
        with pytest.raises(ValueError):
            sink.emit("run", {})


# ----------------------------------------------------------------------
# engine counters on a hand-computed instance
# ----------------------------------------------------------------------
@pytest.fixture
def five_item_instance():
    """Five 1-D items with a fully hand-checkable First Fit execution.

    Capacity 1.0.  Timeline (size in brackets):

    * item 0 [0.6] on [0, 10)  — opens bin 0
    * item 1 [0.5] on [1, 3)   — does not fit bin 0 → opens bin 1
    * item 2 [0.3] on [2, 4)   — fits bin 0 (0.9) → bin 0
    * item 3 [0.5] on [5, 7)   — bin 1 closed at 3; 0.6+0.5 > 1 → opens bin 2
    * item 4 [0.4] on [6, 8)   — fits bin 0 exactly (1.0) → bin 0

    First Fit counters: arrivals 5, departures 5, bins opened/closed 3,
    peak open bins 2 (bins 0+1 on [1,3), bins 0+2 on [5,7)); candidate
    scans 4 (every arrival except item 0, whose open list was empty);
    fit checks 1+2+1+2 = 6 (|L| at items 1, 2, 3, 4).
    """
    return Instance(
        [
            Item(0.0, 10.0, np.array([0.6]), 0),
            Item(1.0, 3.0, np.array([0.5]), 1),
            Item(2.0, 4.0, np.array([0.3]), 2),
            Item(5.0, 7.0, np.array([0.5]), 3),
            Item(6.0, 8.0, np.array([0.4]), 4),
        ]
    )


class TestEngineCounters:
    def test_first_fit_counters_match_hand_computation(self, five_item_instance):
        collector = StatsCollector()
        packing = run("first_fit", five_item_instance, collector=collector)
        s = collector.snapshot()
        assert s.algorithm == "first_fit"
        assert s.runs == 1
        assert s.events == 10
        assert s.arrivals == 5
        assert s.departures == 5
        assert s.bins_opened == 3
        assert s.bins_closed == 3
        assert s.peak_open_bins == 2
        assert s.candidate_scans == 4
        assert s.fit_checks == 6
        assert s.wall_time_s > 0.0
        assert s.dispatch_time_s > 0.0
        assert s.wall_time_s >= s.dispatch_time_s
        assert s.events_per_sec > 0.0
        # the instrumented run produced the same packing as a plain run
        plain = run("first_fit", five_item_instance)
        assert packing.cost == pytest.approx(plain.cost)
        assert s.bins_opened == plain.num_bins

    def test_counters_consistent_with_packing_on_random_instance(self):
        inst = UniformWorkload(d=2, n=120, mu=8, T=200, B=10).sample_seeded(3)
        collector = StatsCollector()
        packing = run("move_to_front", inst, collector=collector)
        s = collector.snapshot()
        assert s.arrivals == inst.n
        assert s.departures == inst.n
        assert s.bins_opened == packing.num_bins
        assert s.bins_closed == s.bins_opened  # every bin closes eventually
        assert s.peak_open_bins == packing.max_concurrent_bins()
        # every scan inspects at least one candidate
        assert s.fit_checks >= s.candidate_scans >= 1

    def test_instrumented_and_plain_runs_produce_identical_packings(self, five_item_instance):
        for name in ("move_to_front", "best_fit", "next_fit"):
            instrumented = run(name, five_item_instance, collector=StatsCollector())
            plain = run(name, five_item_instance)
            assert instrumented.assignment == plain.assignment

    def test_collector_unbound_after_run(self, five_item_instance):
        from repro.algorithms.registry import make_algorithm

        algo = make_algorithm("first_fit")
        simulate(algo, five_item_instance, collector=StatsCollector())
        assert algo._collector is None

    def test_collector_accumulates_across_runs(self, five_item_instance):
        collector = StatsCollector()
        run_many("first_fit", [five_item_instance, five_item_instance],
                 collector=collector)
        s = collector.snapshot()
        assert s.runs == 2
        assert s.events == 20
        assert s.fit_checks == 12
        assert s.peak_open_bins == 2  # a gauge, not a sum

    def test_run_record_emitted_to_sink(self, five_item_instance):
        sink = MemorySink()
        run("first_fit", five_item_instance, collector=StatsCollector(sink=sink))
        records = sink.by_kind("run")
        assert len(records) == 1
        assert records[0]["events"] == 10
        assert records[0]["n"] == 5

    def test_rss_sampling_when_enabled(self, five_item_instance):
        collector = StatsCollector(sample_rss=True)
        run("first_fit", five_item_instance, collector=collector)
        s = collector.snapshot()
        # resource is available on the platforms CI runs on
        assert s.peak_rss_bytes is None or s.peak_rss_bytes > 0

    def test_engine_default_has_no_collector(self, five_item_instance):
        from repro.algorithms.registry import make_algorithm

        engine = Engine(five_item_instance, make_algorithm("first_fit"))
        assert engine.collector is None
        engine.run()


# ----------------------------------------------------------------------
# cross-process aggregation
# ----------------------------------------------------------------------
class TestParallelStats:
    @pytest.fixture(scope="class")
    def batch(self):
        gen = UniformWorkload(d=2, n=40, mu=5, T=30, B=10)
        return generate_batch(gen, 6, seed=0)

    def test_stats_absent_by_default(self, batch):
        results = parallel_sweep(["first_fit"], batch, processes=0)
        assert all(u.stats is None for u in results["first_fit"])

    def test_serial_stats_populated(self, batch):
        results = parallel_sweep(["first_fit"], batch, processes=0,
                                 collect_stats=True)
        for unit in results["first_fit"]:
            assert unit.stats is not None
            assert unit.stats.events == 80  # 40 arrivals + 40 departures
            assert unit.stats.bins_opened == unit.num_bins

    def test_cross_process_aggregation_equals_serial(self, batch):
        algos = ["first_fit", "move_to_front"]
        serial = aggregate_sweep_stats(
            parallel_sweep(algos, batch, processes=0, collect_stats=True))
        parallel = aggregate_sweep_stats(
            parallel_sweep(algos, batch, processes=2, collect_stats=True))
        for name in algos:
            assert serial[name].deterministic_part() == parallel[name].deterministic_part()
            assert serial[name].runs == len(batch)

    def test_aggregate_skips_missing_stats(self, batch):
        results = parallel_sweep(["first_fit"], batch, processes=0)
        agg = aggregate_sweep_stats(results)
        assert agg["first_fit"] == RunStats()
