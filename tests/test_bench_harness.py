"""Tests for the perf-baseline bench suite and its CLI/script entry points.

Everything runs at smoke scale (seconds) — the core suite's shape is
identical, only the scenario grid differs.
"""

from __future__ import annotations

import json

import pytest

from repro.algorithms.registry import PAPER_ALGORITHMS
from repro.cli import main
from repro.observability import MemorySink
from repro.observability.bench import (
    BASE_SEED,
    CORE_SCENARIOS,
    MEDIUM_SCENARIO,
    SCHEMA,
    SMOKE_SCENARIOS,
    BenchScenario,
    measure_overhead,
    run_scenario,
    run_suite,
    write_bench,
)

FAST = BenchScenario(name="tiny", d=1, n=30, size="small", mu=5, T=100, B=10,
                     seed=BASE_SEED)


class TestScenarios:
    def test_core_grid_shape(self):
        assert len(CORE_SCENARIOS) == 9  # d in {1,2,4} x 3 sizes
        assert {s.d for s in CORE_SCENARIOS} == {1, 2, 4}
        assert {s.size for s in CORE_SCENARIOS} == {"small", "medium", "large"}
        # seeds are pinned and unique per cell
        assert len({s.seed for s in CORE_SCENARIOS}) == len(CORE_SCENARIOS)

    def test_medium_scenario_is_in_the_core_grid(self):
        assert MEDIUM_SCENARIO in CORE_SCENARIOS
        assert MEDIUM_SCENARIO.d == 2 and MEDIUM_SCENARIO.size == "medium"

    def test_instances_are_reproducible(self):
        a = FAST.build_instance()
        b = FAST.build_instance()
        assert a.to_dict() == b.to_dict()


class TestRunScenario:
    @pytest.fixture(scope="class")
    def record(self):
        return run_scenario(FAST, repeats=1)

    def test_covers_all_seven_paper_algorithms(self, record):
        assert sorted(record["results"]) == sorted(PAPER_ALGORITHMS)
        assert len(record["results"]) == 7

    def test_cell_fields(self, record):
        for name, cell in record["results"].items():
            assert cell["wall_time_s"] > 0.0
            assert cell["events_per_sec"] > 0.0
            assert cell["cost_ratio"] >= 1.0 - 1e-9, name
            assert cell["events"] == 2 * FAST.n
            assert cell["num_bins"] >= 1
            assert cell["cost"] == pytest.approx(
                cell["cost_ratio"] * record["lower_bound"])

    def test_emits_scenario_record_to_sink(self):
        sink = MemorySink()
        run_scenario(FAST, algorithms=["first_fit"], repeats=1, sink=sink)
        assert len(sink.by_kind("scenario")) == 1
        # one "run" record per repeat per algorithm
        assert len(sink.by_kind("run")) == 1


class TestRunSuite:
    def test_payload_schema(self, tmp_path):
        payload = run_suite(scenarios=[FAST], algorithms=["first_fit", "next_fit"],
                            repeats=1, suite="smoke")
        assert payload["schema"] == SCHEMA
        assert payload["suite"] == "smoke"
        assert payload["algorithms"] == ["first_fit", "next_fit"]
        assert len(payload["scenarios"]) == 1
        path = tmp_path / "BENCH_test.json"
        write_bench(payload, str(path))
        reread = json.loads(path.read_text())
        assert reread == json.loads(json.dumps(payload))  # JSON-stable

    def test_progress_callback_invoked(self):
        lines = []
        run_suite(scenarios=[FAST], algorithms=["first_fit"], repeats=1,
                  progress=lines.append)
        assert len(lines) == 1 and "tiny" in lines[0]

    def test_smoke_scenarios_are_small(self):
        assert all(s.n <= 100 for s in SMOKE_SCENARIOS)


class TestMeasureOverhead:
    def test_report_fields(self):
        report = measure_overhead(scenario=FAST, repeats=2)
        assert report["scenario"] == "tiny"
        assert report["plain_s"] > 0.0
        assert report["instrumented_s"] > 0.0
        assert isinstance(report["overhead_frac"], float)


class TestCliBench:
    def test_bench_subcommand_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_core.json"
        trace = tmp_path / "trace.jsonl"
        code = main(["bench", "--suite", "smoke", "--repeats", "1",
                     "--output", str(out), "--trace", str(trace)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["suite"] == "smoke"
        assert {s["name"] for s in payload["scenarios"]} == \
            {s.name for s in SMOKE_SCENARIOS}
        # trace got one run record per (scenario, algorithm, repeat)
        kinds = [json.loads(line)["kind"] for line in trace.read_text().splitlines()]
        assert kinds.count("run") == len(SMOKE_SCENARIOS) * len(PAPER_ALGORITHMS)
        assert kinds.count("suite") == 1
        assert "wrote" in capsys.readouterr().out

    def test_bench_overhead_flag(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main(["bench", "--suite", "smoke", "--repeats", "1",
                     "--output", str(out), "--overhead"])
        assert code == 0
        payload = json.loads(out.read_text())
        assert "overhead" in payload
        assert "overhead" in capsys.readouterr().out


class TestHarnessScript:
    def test_script_main_smoke(self, tmp_path, capsys):
        import importlib.util
        import pathlib

        script = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "harness.py"
        spec = importlib.util.spec_from_file_location("bench_harness_script", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        out = tmp_path / "BENCH_core.json"
        assert module.main(["--suite", "smoke", "--repeats", "1",
                            "--output", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == SCHEMA


class TestAdversarySuite:
    def test_run_adversary_suite_payload(self):
        from repro.adversaries.scenarios import MUST_EXCEED_SCENARIOS
        from repro.observability.bench import ADVERSARY_SCHEMA, run_adversary_suite

        # two scenarios keep the test in tier-1 time; the full grid is
        # covered by the CLI merge test below (slow) and repro verify
        payload = run_adversary_suite(
            scenarios=MUST_EXCEED_SCENARIOS[2:4], repeats=1
        )
        assert payload["schema"] == ADVERSARY_SCHEMA
        assert payload["headline"]["all_passed"] is True
        assert len(payload["scenarios"]) == 2
        for rec in payload["scenarios"]:
            assert rec["passed"] and rec["replay_identical"]
            assert rec["certified_ratio"] >= rec["required"]
            assert rec["wall_time_s"] > 0
        # payload must be strict JSON (no Infinity literals)
        json.loads(json.dumps(payload, allow_nan=False))

    @pytest.mark.slow
    def test_cli_merges_adversary_under_core(self, tmp_path, capsys):
        out = tmp_path / "BENCH_core.json"
        assert main(["bench", "--suite", "smoke", "--repeats", "1",
                     "--output", str(out)]) == 0
        assert main(["bench", "--suite", "adversary", "--repeats", "1",
                     "--output", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == SCHEMA  # core stays top-level
        assert payload["adversary"]["headline"]["all_passed"] is True
        assert payload["adversary"]["headline"]["max_amplifier_ratio"] >= 50.0
        # a core re-run preserves the nested adversary record
        assert main(["bench", "--suite", "smoke", "--repeats", "1",
                     "--output", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert "adversary" in payload
        capsys.readouterr()


class TestRepackingSuite:
    def test_run_repacking_suite_payload(self):
        from repro.observability.bench import (
            REPACK_FRONTIER_GRID,
            REPACKING_SCHEMA,
            REPACKING_SMOKE_SCENARIOS,
            run_repacking_suite,
        )

        payload = run_repacking_suite(REPACKING_SMOKE_SCENARIOS, repeats=1,
                                      suite="repacking-smoke")
        assert payload["schema"] == REPACKING_SCHEMA
        assert payload["headline"]["gadgets_improved"] is True
        assert len(payload["scenarios"]) == len(REPACKING_SMOKE_SCENARIOS)
        for rec in payload["scenarios"]:
            assert len(rec["frontier"]) == len(REPACK_FRONTIER_GRID)
            anchor = rec["frontier"][0]
            assert anchor["repacker"] == "no_repack"
            assert anchor["moves"] == 0
            assert anchor["cost"] == rec["no_recourse_cost"]
            for point in rec["frontier"]:
                assert point["cost"] > 0 and point["num_bins"] >= 1
            assert rec["best"]["cost"] <= anchor["cost"]
            assert rec["lower_bound"] <= rec["no_recourse_cost"] + 1e-9
        # the gadget scenarios achieve a strict improvement
        gadgets = [r for r in payload["scenarios"]
                   if r["params"]["kind"] in ("thm5", "thm6")]
        assert gadgets
        for rec in gadgets:
            assert rec["best"]["cost"] < rec["no_recourse_cost"]
        json.loads(json.dumps(payload, allow_nan=False))

    def test_cli_merges_repacking_under_core(self, tmp_path, capsys):
        out = tmp_path / "BENCH_core.json"
        assert main(["bench", "--suite", "smoke", "--repeats", "1",
                     "--output", str(out)]) == 0
        assert main(["bench", "--suite", "repacking-smoke", "--repeats", "1",
                     "--output", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == SCHEMA  # core stays top-level
        assert payload["repacking"]["headline"]["gadgets_improved"] is True
        # a core re-run preserves the nested repacking record
        assert main(["bench", "--suite", "smoke", "--repeats", "1",
                     "--output", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert "repacking" in payload
        capsys.readouterr()

class TestVectorizedSuite:
    def test_run_vectorized_suite_payload(self):
        from repro.observability.bench import (
            MEASURE_KERNEL_SPECS,
            VECTORIZED_SCHEMA,
            VECTORIZED_SMOKE_SCENARIO,
            run_vectorized_suite,
        )

        payload = run_vectorized_suite(
            trials_scenario=VECTORIZED_SMOKE_SCENARIO,
            measure_scenario=VECTORIZED_SMOKE_SCENARIO,
            n_trials=8, repeats=1, suite="fastpath-vectorized-smoke",
        )
        assert payload["schema"] == VECTORIZED_SCHEMA
        head = payload["headline"]
        assert head["n_trials"] == 8
        # bit-identity is the acceptance bar; speed is asserted only at
        # full scale (the CI fastpath-vectorized leg), not at smoke scale
        assert head["identical"] is True
        assert payload["trials"]["identical"] is True
        cells = payload["measure_kernels"]
        assert set(cells) == {name for name, _, _ in MEASURE_KERNEL_SPECS}
        for cell in cells.values():
            assert cell["identical"] is True
            assert cell["fast_numpy_s"] > 0 and cell["classic_s"] > 0
        json.loads(json.dumps(payload, allow_nan=False))

    def test_cli_merges_vectorized_under_fastpath(self, tmp_path, capsys):
        out = tmp_path / "BENCH_core.json"
        assert main(["bench", "--suite", "smoke", "--repeats", "1",
                     "--output", str(out)]) == 0
        assert main(["bench", "--suite", "fastpath-smoke", "--repeats", "1",
                     "--output", str(out)]) == 0
        assert main(["bench", "--suite", "fastpath-vectorized-smoke",
                     "--repeats", "1", "--output", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == SCHEMA  # core stays top-level
        vec = payload["fastpath"]["vectorized"]
        assert vec["suite"] == "fastpath-vectorized-smoke"
        assert vec["headline"]["identical"] is True
        # a fastpath re-run must carry the nested vectorized record over
        assert main(["bench", "--suite", "fastpath-smoke", "--repeats", "1",
                     "--output", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["fastpath"]["suite"] == "fastpath-smoke"
        assert "vectorized" in payload["fastpath"]
        # ... and a core re-run carries the whole fastpath record (with
        # the nested vectorized payload) as a companion suite
        assert main(["bench", "--suite", "smoke", "--repeats", "1",
                     "--output", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert "vectorized" in payload["fastpath"]
        capsys.readouterr()

    def test_vectorized_without_core_writes_standalone(self, tmp_path, capsys):
        from repro.observability.bench import VECTORIZED_SCHEMA

        out = tmp_path / "bench.json"
        assert main(["bench", "--suite", "fastpath-vectorized-smoke",
                     "--repeats", "1", "--output", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == VECTORIZED_SCHEMA
        capsys.readouterr()
