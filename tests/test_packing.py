"""Unit tests for repro.core.packing (result object + audit)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import PackingAuditError
from repro.core.instance import Instance
from repro.core.intervals import Interval
from repro.core.items import Item
from repro.core.packing import BinRecord, Packing


@pytest.fixture
def simple_packing(tiny_instance):
    # items 0 and 1 together, item 2 alone — a feasible assignment
    return Packing.from_assignment(tiny_instance, {0: 0, 1: 0, 2: 1}, algorithm="hand")


class TestConstruction:
    def test_bins_derived_from_items(self, simple_packing):
        recs = {r.index: r for r in simple_packing.bins}
        assert recs[0].opened_at == 0.0 and recs[0].closed_at == 4.0
        assert recs[1].opened_at == 2.0 and recs[1].closed_at == 6.0

    def test_missing_assignment_rejected(self, tiny_instance):
        with pytest.raises(PackingAuditError):
            Packing.from_assignment(tiny_instance, {0: 0, 1: 0})

    def test_algorithm_label(self, simple_packing):
        assert simple_packing.algorithm == "hand"


class TestMetrics:
    def test_cost_is_sum_of_bin_spans(self, simple_packing):
        assert simple_packing.cost == pytest.approx(4.0 + 4.0)

    def test_num_bins(self, simple_packing):
        assert simple_packing.num_bins == 2

    def test_bins_open_at(self, simple_packing):
        assert simple_packing.bins_open_at(1.0) == 1
        assert simple_packing.bins_open_at(3.0) == 2
        assert simple_packing.bins_open_at(5.0) == 1
        assert simple_packing.bins_open_at(6.0) == 0  # half-open close

    def test_max_concurrent(self, simple_packing):
        assert simple_packing.max_concurrent_bins() == 2

    def test_items_in_bin(self, simple_packing):
        uids = [it.uid for it in simple_packing.items_in_bin(0)]
        assert uids == [0, 1]

    def test_items_in_unknown_bin(self, simple_packing):
        with pytest.raises(KeyError):
            simple_packing.items_in_bin(42)

    def test_average_utilization_in_unit_range(self, simple_packing):
        u = simple_packing.average_utilization()
        assert 0.0 < u <= 1.0

    def test_summary_keys(self, simple_packing):
        s = simple_packing.summary()
        assert {"algorithm", "cost", "num_bins", "span"} <= set(s)


class TestAudit:
    def test_feasible_packing_validates(self, simple_packing):
        simple_packing.validate()

    def test_overfull_bin_caught(self, tiny_instance):
        # items 1 (0.4) and 2 (0.7) overlap on [2, 3): 1.1 > 1
        packing = Packing.from_assignment(tiny_instance, {0: 0, 1: 1, 2: 1})
        with pytest.raises(PackingAuditError):
            packing.validate()

    def test_overfull_multi_dim_caught(self, two_dim_instance):
        # items 0 and 1 conflict in dim 0
        packing = Packing.from_assignment(two_dim_instance, {0: 0, 1: 0, 2: 1, 3: 2})
        with pytest.raises(PackingAuditError):
            packing.validate()

    def test_cross_pairs_validate(self, two_dim_instance):
        # item 0 with item 2 (conflict-free across dims)
        packing = Packing.from_assignment(two_dim_instance, {0: 0, 2: 0, 1: 1, 3: 1})
        packing.validate()

    def test_tampered_usage_period_caught(self, tiny_instance):
        good = Packing.from_assignment(tiny_instance, {0: 0, 1: 0, 2: 1})
        bad_bins = tuple(
            BinRecord(r.index, r.opened_at, r.closed_at + 1.0, r.item_uids)
            for r in good.bins
        )
        bad = Packing(tiny_instance, good.assignment, bad_bins, "tampered")
        with pytest.raises(PackingAuditError):
            bad.validate()

    def test_sequential_reuse_is_feasible(self):
        # two items that never overlap can share a bin
        inst = Instance(
            [Item(0, 1, np.array([0.9]), 0), Item(1, 2, np.array([0.9]), 1)]
        )
        packing = Packing.from_assignment(inst, {0: 0, 1: 0})
        packing.validate()
        assert packing.cost == pytest.approx(2.0)
