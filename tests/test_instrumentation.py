"""Tests for the analysis observers (Figures 1-3 instrumentation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.first_fit import FirstFit
from repro.algorithms.move_to_front import MoveToFront
from repro.core.instance import Instance
from repro.core.intervals import Interval, intervals_partition, union_length
from repro.core.items import Item
from repro.simulation.engine import Engine
from repro.simulation.instrumentation import (
    LeaderTracker,
    LoadSnapshotter,
    UsagePeriodTracker,
)
from repro.workloads.uniform import UniformWorkload


@pytest.fixture
def mf_run(uniform_small):
    tracker = LeaderTracker()
    packing = Engine(uniform_small, MoveToFront(), observers=[tracker]).run()
    return tracker, packing


class TestLeaderTracker:
    def test_requires_move_to_front(self, uniform_small):
        tracker = LeaderTracker()
        with pytest.raises(TypeError):
            Engine(uniform_small, FirstFit(), observers=[tracker]).run()

    def test_leading_intervals_are_disjoint(self, mf_run):
        tracker, _ = mf_run
        all_leading = sorted(
            (iv for ivs in tracker.leading_intervals().values() for iv in ivs),
            key=lambda iv: iv.start,
        )
        for a, b in zip(all_leading, all_leading[1:]):
            assert a.end <= b.start + 1e-9

    def test_leading_intervals_cover_span(self, mf_run):
        """Claim 1's structural fact: leading intervals tile the active
        time exactly (total length == span)."""
        tracker, packing = mf_run
        total = sum(
            iv.length for ivs in tracker.leading_intervals().values() for iv in ivs
        )
        assert total == pytest.approx(packing.instance.span, rel=1e-9)

    def test_leading_intervals_start_within_usage(self, mf_run):
        # a bin becomes leader at opening, but that leading period can be
        # zero-length (another same-instant arrival takes over), so the
        # first *non-empty* leading interval starts at or after opening
        tracker, packing = mf_run
        leading = tracker.leading_intervals()
        for rec in packing.bins:
            for iv in leading.get(rec.index, []):
                assert iv.start >= rec.opened_at - 1e-9
                assert iv.end <= rec.closed_at + 1e-9

    def test_decomposition_sums_to_cost(self, mf_run):
        """leading + non-leading lengths == total usage time (Eq. 3)."""
        tracker, packing = mf_run
        leading = tracker.leading_intervals()
        non_leading = tracker.non_leading_intervals()
        total = 0.0
        for rec in packing.bins:
            total += sum(iv.length for iv in leading.get(rec.index, []))
            total += sum(iv.length for iv in non_leading.get(rec.index, []))
        assert total == pytest.approx(packing.cost, rel=1e-9)

    def test_non_leading_within_usage(self, mf_run):
        tracker, _ = mf_run
        usage = tracker.usage_periods()
        for index, gaps in tracker.non_leading_intervals().items():
            for gap in gaps:
                assert usage[index].start - 1e-9 <= gap.start
                assert gap.end <= usage[index].end + 1e-9

    def test_timeline_is_contiguous(self, mf_run):
        tracker, _ = mf_run
        timeline = tracker.leader_timeline()
        for (iv_a, _), (iv_b, _) in zip(timeline, timeline[1:]):
            assert iv_a.end == pytest.approx(iv_b.start)


class TestUsagePeriodTracker:
    def test_periods_in_opening_order(self, uniform_small):
        tracker = UsagePeriodTracker()
        Engine(uniform_small, FirstFit(), observers=[tracker]).run()
        starts = [iv.start for iv in tracker.usage_periods()]
        assert starts == sorted(starts)

    def test_decomposition_partitions_each_period(self, uniform_small):
        tracker = UsagePeriodTracker()
        Engine(uniform_small, FirstFit(), observers=[tracker]).run()
        for iv, (p, q) in zip(tracker.usage_periods(), tracker.decomposition()):
            assert p.length + q.length == pytest.approx(iv.length)
            assert p.start == iv.start
            assert q.end == iv.end

    def test_q_lengths_sum_to_span_single_component(self):
        """Claim 4: sum of Q_i equals span(R) when activity is contiguous."""
        inst = UniformWorkload(d=1, n=80, mu=10, T=30, B=5).sample_seeded(11)
        assert len(inst.active_components()) == 1, "fixture must be contiguous"
        tracker = UsagePeriodTracker()
        Engine(inst, FirstFit(), observers=[tracker]).run()
        q_total = sum(q.length for _, q in tracker.decomposition())
        assert q_total == pytest.approx(inst.span, rel=1e-9)

    def test_first_bin_has_empty_p(self, uniform_small):
        tracker = UsagePeriodTracker()
        Engine(uniform_small, FirstFit(), observers=[tracker]).run()
        p0, _ = tracker.decomposition()[0]
        assert p0.empty


class TestLoadSnapshotter:
    def test_snapshot_matches_instance_load(self, uniform_small):
        t = uniform_small.horizon.start + uniform_small.horizon.length / 2
        snap = LoadSnapshotter([t])
        Engine(uniform_small, FirstFit(), observers=[snap]).run()
        total = sum(
            (v for v in snap.snapshots[t].values()), np.zeros(uniform_small.d)
        )
        assert np.allclose(total, uniform_small.load_at(t))

    def test_half_open_departure_excluded(self):
        inst = Instance([Item(0, 1, np.array([0.5]), 0)])
        snap = LoadSnapshotter([0.5, 1.0])
        Engine(inst, FirstFit(), observers=[snap]).run()
        assert 0 in snap.snapshots[0.5]
        assert snap.snapshots[1.0] == {}

    def test_loads_within_capacity(self, uniform_small):
        times = np.linspace(
            uniform_small.horizon.start, uniform_small.horizon.end, 7
        )
        snap = LoadSnapshotter(list(times))
        Engine(uniform_small, FirstFit(), observers=[snap]).run()
        for t, loads in snap.snapshots.items():
            for load in loads.values():
                assert np.all(load <= uniform_small.capacity + 1e-6)
