"""Property-based tests driven by the repro.verify.strategies library.

Hypothesis searches the instance space (grid-valued sizes/times, so ties
and exact fits are dense) for inputs that break the differential oracle
or the invariant auditor.  The tier-1 profile is small and derandomised;
the CI fuzz job widens the search with ``HYPOTHESIS_PROFILE=ci`` and the
``fuzz``-marked cases.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.algorithms.registry import make_algorithm
from repro.simulation.runner import run
from repro.verify import strategies as sts
from repro.verify.invariants import audit_instance, audit_run
from repro.verify.oracles import cost_check, differential_check


@given(inst=sts.instances())
def test_generated_instances_are_valid(inst):
    assert inst.n >= 1
    for it in inst.items:
        assert it.arrival < it.departure
        assert np.all(np.asarray(it.size) > 0)
        assert np.all(np.asarray(it.size) <= 1.0 + 1e-12)
    arrivals = [it.arrival for it in inst.items]
    assert arrivals == sorted(arrivals)
    assert audit_instance(inst) == []


@given(inst=sts.instances(max_items=14), policy=sts.policies())
def test_differential_property(inst, policy):
    """Engine == reference simulator on arbitrary generated instances."""
    assert differential_check(inst, policy, seed=0) == []


@given(inst=sts.instances(max_items=14), policy=sts.policies())
def test_audit_property(inst, policy):
    kwargs = {"seed": 0} if policy == "random_fit" else {}
    packing = run(make_algorithm(policy, **kwargs), inst)
    assert audit_run(packing, policy) == []
    assert cost_check(packing) == []


@given(inst=sts.adversarial_instances())
def test_gadget_instances_pass_audit(inst):
    assert audit_instance(inst) == []
    assert differential_check(inst, "first_fit") == []
    assert differential_check(inst, "move_to_front") == []


@given(pair=sts.adversary_configs())
def test_adversary_configs_yield_valid_instances(pair):
    """Any generated attack config induces a valid, auditor-clean
    instance whose classic replay matches the live run bit for bit."""
    from repro.adversaries import AdversaryDriver, make_adversary

    name, config = pair
    result = AdversaryDriver(make_adversary(name, config), seed=5).run()
    assert result.replay_identical
    assert 1 <= result.n <= config.max_items
    assert audit_instance(result.instance) == []
    assert result.opt_upper > 0
    assert result.certified_ratio > 0


@given(inst=sts.instances(d=1, mu=1.0, max_items=10))
def test_unit_duration_cost_identity(inst):
    """With mu == 1 every duration is exactly 1, so each bin's usage is a
    union of unit intervals and total cost is at most n."""
    packing = run(make_algorithm("first_fit"), inst)
    assert packing.cost <= inst.n + 1e-9


@pytest.mark.fuzz
@settings(max_examples=300, deadline=None)
@given(inst=sts.instances(max_items=20, jitter=True), policy=sts.policies())
def test_differential_property_jittered(inst, policy):
    """Deep variant: off-grid continuous sizes exercise the EPS tolerance."""
    assert differential_check(inst, policy, seed=0) == []
    kwargs = {"seed": 0} if policy == "random_fit" else {}
    packing = run(make_algorithm(policy, **kwargs), inst)
    assert audit_run(packing, policy) == []
