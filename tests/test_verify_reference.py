"""The brute-force reference simulator: hand-checks and engine differentials.

The reference simulator (:mod:`repro.verify.reference`) is the
independent re-implementation every registry policy is replayed against.
These tests pin it two ways: against *hand-computed* packings on a tiny
instance where the six deterministic policies provably diverge, and
against the production engine on corpus instances (bit-identical
assignments — the differential oracle).
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from repro.core.instance import Instance
from repro.simulation.runner import run
from repro.verify.generators import corpus_list
from repro.verify.oracles import compare_with_reference, differential_check
from repro.verify.reference import REFERENCE_POLICIES, ReferenceSimulator


@pytest.fixture
def divergence_instance():
    """Four simultaneous 1-D unit-duration items: sizes .4 .7 .2 .5.

    Chosen so the deterministic policies split three ways:
    FF/WF open 3 bins with item 2 joining bin 0; BF/LF/MF open 2 bins
    with item 2 joining bin 1; NF releases bin 0 and opens a third bin
    for item 3.
    """
    return Instance.from_tuples([
        (0.0, 1.0, [0.4]),
        (0.0, 1.0, [0.7]),
        (0.0, 1.0, [0.2]),
        (0.0, 1.0, [0.5]),
    ])


HAND_COMPUTED = {
    "first_fit": ({0: 0, 1: 1, 2: 0, 3: 2}, 3),
    "worst_fit": ({0: 0, 1: 1, 2: 0, 3: 2}, 3),
    "best_fit": ({0: 0, 1: 1, 2: 1, 3: 0}, 2),
    "last_fit": ({0: 0, 1: 1, 2: 1, 3: 0}, 2),
    "move_to_front": ({0: 0, 1: 1, 2: 1, 3: 0}, 2),
    "next_fit": ({0: 0, 1: 1, 2: 1, 3: 2}, 3),
}


@pytest.mark.parametrize("policy", sorted(HAND_COMPUTED))
def test_reference_matches_hand_computation(policy, divergence_instance):
    result = ReferenceSimulator(policy).run(divergence_instance)
    assignment, num_bins = HAND_COMPUTED[policy]
    assert result.assignment == assignment
    assert result.num_bins == num_bins


def test_reference_covers_all_registry_policies():
    assert set(REFERENCE_POLICIES) == set(PAPER_ALGORITHMS)


@pytest.mark.parametrize("policy", PAPER_ALGORITHMS)
def test_engine_matches_reference_on_corpus(policy):
    """The differential oracle holds on one full corpus cycle."""
    for entry in corpus_list(22, seed=11):
        violations = differential_check(entry.instance, policy, seed=0)
        assert violations == [], f"{entry.recipe}: {violations}"


def test_random_fit_is_seed_deterministic(divergence_instance):
    a = ReferenceSimulator("random_fit", seed=5).run(divergence_instance)
    b = ReferenceSimulator("random_fit", seed=5).run(divergence_instance)
    assert a.assignment == b.assignment


def test_random_fit_differential_uses_matching_seed():
    inst = corpus_list(3, seed=9)[2].instance
    packing = run(make_algorithm("random_fit", seed=5), inst)
    assert compare_with_reference(packing, "random_fit", seed=5) == []


def test_unknown_policy_rejected():
    with pytest.raises(Exception):
        ReferenceSimulator("middle_fit")
