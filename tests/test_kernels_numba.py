"""Unit tests for the numba kernel module's state machine and helpers.

Everything here runs without numba installed: the availability state
machine is driven through its env knobs (``REPRO_NUMBA_DISABLE``,
``REPRO_NUMBA_PYFUNC``), and the kernel helpers — the pairwise summer,
the ufunc-faithful pow ladder, the replay drivers — execute as plain
Python functions under pyfunc mode, which is exactly the code numba
jits on an equipped host.  Bit-identity of the full replay against the
classic engine lives in ``test_fastpath_differential.py``; this file
pins the pieces those end-to-end runs can't isolate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.simulation import kernels_numba as knl


@pytest.fixture(autouse=True)
def _fresh_state(monkeypatch):
    # start from a clean slate: host-level env pins (e.g. a CI leg
    # exporting REPRO_NUMBA_DISABLE=1) must not leak into these tests
    monkeypatch.delenv(knl.DISABLE_ENV, raising=False)
    monkeypatch.delenv(knl.PYFUNC_ENV, raising=False)
    knl.reset_state()
    yield
    knl.reset_state()


# ----------------------------------------------------------------------
# availability state machine
# ----------------------------------------------------------------------
class TestStateMachine:
    def test_disable_env_wins(self, monkeypatch):
        monkeypatch.setenv(knl.DISABLE_ENV, "1")
        assert not knl.numba_available()
        assert not knl.kernels_ready()
        assert knl.DISABLE_ENV in knl.unavailable_reason()

    def test_disable_env_any_nonempty_value_trips(self, monkeypatch):
        # the knob is presence-based: any non-empty value disables,
        # empty/unset does not
        for on in ("1", "0", "false"):
            knl.reset_state()
            monkeypatch.setenv(knl.DISABLE_ENV, on)
            assert knl.DISABLE_ENV in knl.unavailable_reason()
        knl.reset_state()
        monkeypatch.setenv(knl.DISABLE_ENV, "")
        assert knl.DISABLE_ENV not in knl.unavailable_reason()

    def test_pyfunc_mode_is_ready_without_numba(self, monkeypatch):
        monkeypatch.setenv(knl.PYFUNC_ENV, "1")
        assert knl.kernels_ready()
        assert knl.pyfunc_mode()
        assert knl.unavailable_reason() == ""

    def test_disable_beats_pyfunc(self, monkeypatch):
        monkeypatch.setenv(knl.PYFUNC_ENV, "1")
        monkeypatch.setenv(knl.DISABLE_ENV, "1")
        assert not knl.kernels_ready()
        assert not knl.pyfunc_mode()

    def test_mark_broken_sticks_until_reset(self, monkeypatch):
        monkeypatch.setenv(knl.PYFUNC_ENV, "1")
        assert knl.kernels_ready()
        knl.mark_broken("kernel exploded (test)")
        assert not knl.kernels_ready()
        assert "kernel exploded" in knl.unavailable_reason()
        knl.reset_state()
        monkeypatch.setenv(knl.PYFUNC_ENV, "1")
        assert knl.kernels_ready()

    def test_warmup_raises_when_unavailable(self, monkeypatch):
        monkeypatch.setenv(knl.DISABLE_ENV, "1")
        with pytest.raises(ConfigurationError):
            knl.warmup()

    def test_warmup_pyfunc_is_free_and_warm(self, monkeypatch):
        monkeypatch.setenv(knl.PYFUNC_ENV, "1")
        assert knl.warmup() == 0.0
        assert knl.is_warm()
        assert knl.jit_compile_seconds() == 0.0

    def test_unavailable_reason_names_numba_when_missing(self, monkeypatch):
        monkeypatch.delenv(knl.DISABLE_ENV, raising=False)
        monkeypatch.delenv(knl.PYFUNC_ENV, raising=False)
        if knl.numba_available():  # host has numba: nothing to assert
            pytest.skip("numba importable on this host")
        assert "numba" in knl.unavailable_reason()


# ----------------------------------------------------------------------
# kernel helpers (pyfunc mode = the exact code numba jits)
# ----------------------------------------------------------------------
class TestPairwiseSum:
    @pytest.mark.parametrize(
        "n", [0, 1, 2, 7, 8, 9, 16, 31, 127, 128, 129, 255, 256, 300, 1000]
    )
    def test_matches_numpy_pairwise_bitwise(self, n):
        rng = np.random.default_rng(n + 1)
        a = rng.random(n + 3) * 3.0  # offset start: lo need not be 0
        mine = knl._pairwise_sum(a, 3, n)
        ref = float(np.add.reduce(a[3:3 + n]))
        assert np.float64(mine).view(np.int64) == np.float64(ref).view(
            np.int64
        ), n


class TestPowLadder:
    def test_shortcut_exponents(self):
        rng = np.random.default_rng(7)
        for x in rng.random(64) * 5.0:
            assert knl._npy_pow(x, 2.0) == x * x
            assert knl._npy_pow(x, 1.0) == x
            assert knl._npy_pow(x, 0.5) == np.sqrt(x)

    def test_generic_exponent_matches_the_ufunc(self):
        """The generic branch must reproduce ``np.power`` — the exact
        operation the numpy backend's ``v**p`` applies per element."""
        rng = np.random.default_rng(11)
        xs = rng.random(256) * 8.0
        for y in (2.5, 3.0, 4.7):
            mine = np.array([knl._npy_pow(x, y) for x in xs])
            ref = np.power(xs, y)
            assert np.array_equal(
                mine.view(np.int64), ref.view(np.int64)
            ), y

    def test_lp_pow_exact_true_in_pyfunc_mode(self, monkeypatch):
        monkeypatch.setenv(knl.PYFUNC_ENV, "1")
        # pyfunc kernels call the ufunc itself: exact by construction
        assert knl.lp_pow_exact(2.5)
        assert knl.lp_pow_exact(3.0)


class TestReplayDrivers:
    def _tiny(self):
        # two items, both fit one bin: order [0, 1], d=1
        order = np.array([0, 1], dtype=np.int64)
        sizes = np.array([[0.4], [0.4]])
        slack = np.array([1.0 + 1e-9])
        return order, sizes, slack

    def test_replay_pyfunc_first_fit(self, monkeypatch):
        monkeypatch.setenv(knl.PYFUNC_ENV, "1")
        order, sizes, slack = self._tiny()
        bin_of, bins, closed, peak, scans, checks = knl.replay(
            order, sizes, slack, 2, 1, "first_fit"
        )
        assert list(bin_of) == [0, 0]
        assert bins == 1 and peak == 1

    def test_replay_trials_matches_per_seed_replays(self, monkeypatch):
        monkeypatch.setenv(knl.PYFUNC_ENV, "1")
        rng = np.random.default_rng(3)
        n, d = 24, 2
        sizes = rng.random((n, d)) * 0.6
        order = np.arange(n, dtype=np.int64)
        slack = np.ones(d) + 1e-9
        seeds = [0, 1, 5]
        mat = knl.replay_trials(order, sizes, slack, n, d, seeds)
        assert mat.shape == (len(seeds), n)
        for row, seed in zip(mat, seeds):
            solo = knl.replay(
                order, sizes, slack, n, d, "random_fit", seed=seed
            )[0]
            assert list(row) == list(solo), seed
