"""Tests for offline static-assignment packing (no repacking)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SolverLimitError
from repro.core.instance import Instance
from repro.core.items import Item
from repro.optimum.offline_assignment import (
    assignment_cost,
    assignment_feasible,
    exact_assignment,
    greedy_assignment,
    local_search,
)
from repro.optimum.opt_cost import optimum_cost
from repro.simulation.runner import run
from repro.workloads.uniform import UniformWorkload


def inst_1d(*triples):
    return Instance.from_tuples([(a, e, [s]) for a, e, s in triples])


class TestCostAndFeasibility:
    def test_cost_counts_union_not_hull(self):
        # two disjoint items in one bin: cost is 2, not 4 (idle time free)
        inst = inst_1d((0, 1, 0.9), (3, 4, 0.9))
        assert assignment_cost(inst, {0: 0, 1: 0}) == pytest.approx(2.0)

    def test_cost_overlapping_counted_once(self):
        inst = inst_1d((0, 2, 0.4), (1, 3, 0.4))
        assert assignment_cost(inst, {0: 0, 1: 0}) == pytest.approx(3.0)

    def test_feasibility_detects_overload(self):
        inst = inst_1d((0, 2, 0.6), (1, 3, 0.6))
        assert not assignment_feasible(inst, {0: 0, 1: 0})
        assert assignment_feasible(inst, {0: 0, 1: 1})

    def test_feasibility_multi_dim(self):
        inst = Instance(
            [Item(0, 2, np.array([0.9, 0.1]), 0), Item(0, 2, np.array([0.1, 0.9]), 1)]
        )
        assert assignment_feasible(inst, {0: 0, 1: 0})


class TestGreedy:
    def test_valid_packing(self, uniform_small):
        packing = greedy_assignment(uniform_small)
        packing.validate()

    def test_duration_awareness_beats_first_fit_trap(self):
        """On the Theorem 8 family, offline duration-aware greedy avoids
        pinning bins with long small items next to short large ones."""
        from repro.workloads.adversarial import theorem8_instance

        adv = theorem8_instance(n=4, mu=10.0)
        greedy = greedy_assignment(adv.instance)
        mf = run("move_to_front", adv.instance)
        assert greedy.cost < mf.cost

    def test_reuses_covered_time_for_free(self):
        # long item [0, 10); short item [2, 3) of compatible size should
        # join it (marginal cost 0) rather than open a new bin
        inst = inst_1d((0, 10, 0.5), (2, 3, 0.4))
        packing = greedy_assignment(inst)
        assert packing.num_bins == 1
        assert packing.cost == pytest.approx(10.0)

    def test_at_least_repack_opt(self):
        for seed in range(3):
            inst = UniformWorkload(d=2, n=12, mu=4, T=10, B=4).sample_seeded(seed)
            packing = greedy_assignment(inst)
            assert packing.cost >= optimum_cost(inst) - 1e-9


class TestLocalSearch:
    def test_never_worse_than_start(self, uniform_small):
        start = greedy_assignment(uniform_small)
        improved = local_search(uniform_small, dict(start.assignment))
        assert improved.cost <= start.cost + 1e-9
        improved.validate()

    def test_improves_a_bad_assignment(self):
        # start from everything-in-own-bin; local search must consolidate
        inst = inst_1d((0, 2, 0.2), (0, 2, 0.2), (0, 2, 0.2))
        bad = {0: 0, 1: 1, 2: 2}
        improved = local_search(inst, bad)
        assert improved.cost == pytest.approx(2.0)
        assert improved.num_bins == 1

    def test_default_start_is_greedy(self, uniform_small):
        packing = local_search(uniform_small)
        assert packing.cost <= greedy_assignment(uniform_small).cost + 1e-9

    def test_bin_indices_dense(self, uniform_small):
        packing = local_search(uniform_small)
        indices = sorted(r.index for r in packing.bins)
        assert indices == list(range(len(indices)))


class TestExact:
    def test_matches_hand_optimum(self):
        # three pairwise-compatible items: one bin, cost = union
        inst = inst_1d((0, 2, 0.3), (1, 3, 0.3), (2, 4, 0.3))
        packing = exact_assignment(inst)
        assert packing.cost == pytest.approx(4.0)

    def test_no_repack_at_least_repack_opt(self):
        for seed in range(4):
            inst = UniformWorkload(d=2, n=9, mu=3, T=8, B=4).sample_seeded(seed)
            exact = exact_assignment(inst)
            assert exact.cost >= optimum_cost(inst) - 1e-9

    def test_at_most_heuristics(self):
        for seed in range(4):
            inst = UniformWorkload(d=1, n=9, mu=3, T=8, B=4).sample_seeded(seed)
            exact = exact_assignment(inst)
            assert exact.cost <= greedy_assignment(inst).cost + 1e-9
            assert exact.cost <= local_search(inst).cost + 1e-9

    def test_at_most_every_online_algorithm(self):
        from repro.algorithms.registry import PAPER_ALGORITHMS, make_algorithm

        inst = UniformWorkload(d=2, n=8, mu=3, T=8, B=4).sample_seeded(7)
        exact = exact_assignment(inst)
        for name in PAPER_ALGORITHMS:
            online = run(make_algorithm(name), inst)
            assert exact.cost <= online.cost + 1e-9

    def test_node_budget(self):
        inst = UniformWorkload(d=1, n=18, mu=4, T=10, B=10).sample_seeded(0)
        with pytest.raises(SolverLimitError):
            exact_assignment(inst, max_nodes=10)

    def test_repack_gap_exists(self):
        """The repack-vs-no-repack gap is real: on the 3-staircase
        instance repacking achieves 6 while any static assignment
        needs more."""
        inst = inst_1d((0, 2, 0.6), (1, 3, 0.6), (2, 4, 0.6))
        repack = optimum_cost(inst)
        static = exact_assignment(inst).cost
        assert repack == pytest.approx(6.0)
        assert static >= repack
