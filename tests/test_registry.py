"""Tests for the algorithm registry."""

from __future__ import annotations

import pytest

from repro.algorithms.base import OnlineAlgorithm
from repro.algorithms.registry import (
    ALGORITHM_FACTORIES,
    PAPER_ALGORITHMS,
    available_algorithms,
    make_algorithm,
)
from repro.core.errors import ConfigurationError


def test_paper_lineup_is_seven():
    assert len(PAPER_ALGORITHMS) == 7
    assert PAPER_ALGORITHMS[0] == "move_to_front"


def test_all_paper_algorithms_registered():
    assert set(PAPER_ALGORITHMS) <= set(ALGORITHM_FACTORIES)


def test_make_returns_online_algorithm():
    for name in available_algorithms():
        algo = make_algorithm(name)
        assert isinstance(algo, OnlineAlgorithm)


def test_instances_not_shared():
    assert make_algorithm("first_fit") is not make_algorithm("first_fit")


def test_names_match_keys():
    # registry key and the algorithm's display name agree for the core set
    for name in PAPER_ALGORITHMS:
        assert make_algorithm(name).name == name


def test_kwargs_forwarded():
    algo = make_algorithm("random_fit", seed=42)
    assert algo.seed == 42


def test_unknown_name_lists_alternatives():
    with pytest.raises(ConfigurationError, match="move_to_front"):
        make_algorithm("does_not_exist")


def test_available_sorted():
    names = available_algorithms()
    assert names == sorted(names)


def test_best_fit_variants_distinct():
    linf = make_algorithm("best_fit")
    l1 = make_algorithm("best_fit_l1")
    assert linf.name != l1.name
