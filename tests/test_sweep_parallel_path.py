"""Tests for the sweep harness's process-pool path and grid determinism."""

from __future__ import annotations

import pytest

from repro.analysis.sweep import sweep_cell
from repro.workloads.base import generate_batch
from repro.workloads.uniform import UniformWorkload

ALGOS = ["move_to_front", "next_fit"]


@pytest.fixture(scope="module")
def batch():
    gen = UniformWorkload(d=2, n=50, mu=5, T=30, B=10)
    return generate_batch(gen, 5, seed=2)


def test_parallel_cell_matches_serial(batch):
    serial = sweep_cell(ALGOS, batch, processes=0)
    parallel = sweep_cell(ALGOS, batch, processes=2)
    for algo in ALGOS:
        assert parallel.ratios[algo] == pytest.approx(serial.ratios[algo])
        assert parallel.stats[algo].mean == pytest.approx(serial.stats[algo].mean)


def test_parallel_cell_keeps_params(batch):
    cell = sweep_cell(ALGOS, batch, params={"d": 2, "mu": 5}, processes=2)
    assert cell.params == {"d": 2, "mu": 5}


def test_parallel_cell_with_kwargs(batch):
    a = sweep_cell(["random_fit"], batch, processes=2,
                   algorithm_kwargs={"random_fit": {"seed": 9}})
    b = sweep_cell(["random_fit"], batch, processes=0,
                   algorithm_kwargs={"random_fit": {"seed": 9}})
    assert a.ratios["random_fit"] == pytest.approx(b.ratios["random_fit"])
