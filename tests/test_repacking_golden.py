"""Golden-pin determinism tests for the repacking engine.

A ``(workload seed, dispatch policy, repacker, budget)`` quadruple fully
determines the repacking run: the event replay is deterministic and the
policies draw nothing from any RNG.  These pins freeze the *entire*
observable outcome — final assignment, every migration (event index,
time, uid, source, destination), and the Eq. 1 cost — exactly like the
stream pins in ``test_workload_golden.py`` freeze the generators.  The
bench frontier and the verify harness's budget auditor both assume a
given quadruple is the same run forever; a failing test here means a
repack policy's scan order or commit rule changed.  Either restore it or
consciously re-pin (and note it in CHANGES.md).
"""

from __future__ import annotations

import hashlib

import pytest

from repro.algorithms.registry import make_algorithm
from repro.repacking import repacking_run
from repro.workloads.uniform import UniformWorkload

#: (repacker, budget) grid pinned per seed; budgets chosen so every
#: non-trivial policy actually moves items on these workloads.
_GRID = {
    "no_repack": 0.0,
    "greedy_consolidate": 2.0,
    "budgeted_rebalance": 0.5,
}


def repack_digest(result) -> str:
    """Stable 16-hex digest of a run's assignment, move log, and cost."""
    h = hashlib.sha256()
    for uid in sorted(result.packing.assignment):
        h.update(f"{uid}|{result.packing.assignment[uid]}|".encode())
    for m in result.moves:
        h.update(
            f"{m.event_index}|{m.time:.12g}|{m.uid}|{m.src}|{m.dst}|".encode()
        )
    h.update(f"{result.cost:.12g}|{result.num_bins}".encode())
    return h.hexdigest()[:16]


def _run(seed: int, repacker: str):
    inst = UniformWorkload(d=2, n=60, mu=8, T=30, B=5, name="golden").sample_seeded(seed)
    return repacking_run(
        make_algorithm("first_fit"), inst,
        repacker=repacker, budget=_GRID[repacker],
    )


#: (repacker, seed) -> pinned digest of the full run outcome.
GOLDEN = {
    ("no_repack", 0): "22d3c06312a84ac5",
    ("no_repack", 7): "73bff28c9fc12274",
    ("greedy_consolidate", 0): "5b6d9d15008a584a",
    ("greedy_consolidate", 7): "96cb6e1c2126feca",
    ("budgeted_rebalance", 0): "80c0d4912945d223",
    ("budgeted_rebalance", 7): "906c265cd4fc1e2e",
}


@pytest.mark.parametrize("repacker,seed", sorted(GOLDEN))
def test_repacking_run_is_pinned(repacker, seed):
    assert repack_digest(_run(seed, repacker)) == GOLDEN[(repacker, seed)]


@pytest.mark.parametrize("repacker", sorted(_GRID))
def test_same_seed_is_repeatable(repacker):
    assert repack_digest(_run(3, repacker)) == repack_digest(_run(3, repacker))


def test_budgeted_policies_actually_move_on_golden_workloads():
    """The pins are not vacuous: both budgeted policies migrate items."""
    for repacker in ("greedy_consolidate", "budgeted_rebalance"):
        assert any(_run(seed, repacker).num_moves > 0 for seed in (0, 7)), (
            f"{repacker} never moved an item on either golden workload"
        )


def test_budgeted_pins_differ_from_no_repack():
    """Each budgeted policy's pinned outcome diverges from no-recourse."""
    for seed in (0, 7):
        base = repack_digest(_run(seed, "no_repack"))
        assert repack_digest(_run(seed, "greedy_consolidate")) != base
