"""Unit tests for the Lemma 1 lower bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.items import Item
from repro.optimum.lower_bounds import (
    all_lower_bounds,
    fractional_height_bound,
    height_lower_bound,
    load_profile,
    opt_lower_bound,
    span_lower_bound,
    utilization_lower_bound,
)
from repro.optimum.opt_cost import optimum_cost
from repro.workloads.uniform import UniformWorkload


def inst_1d(*triples, capacity=None):
    return Instance.from_tuples([(a, e, [s]) for a, e, s in triples], capacity=capacity)


class TestLoadProfile:
    def test_single_item(self):
        times, loads = load_profile(inst_1d((0, 2, 0.5)))
        assert list(times) == [0, 2]
        assert loads.shape == (1, 1)
        assert loads[0, 0] == pytest.approx(0.5)

    def test_overlapping_items(self):
        times, loads = load_profile(inst_1d((0, 2, 0.5), (1, 3, 0.4)))
        assert list(times) == [0, 1, 2, 3]
        assert loads[:, 0] == pytest.approx([0.5, 0.9, 0.4])

    def test_gap_has_zero_load(self):
        times, loads = load_profile(inst_1d((0, 1, 0.5), (2, 3, 0.5)))
        assert loads[:, 0] == pytest.approx([0.5, 0.0, 0.5])

    def test_no_negative_loads_from_cancellation(self):
        inst = UniformWorkload(d=3, n=200, mu=10, T=100, B=10).sample_seeded(0)
        _, loads = load_profile(inst)
        assert np.all(loads >= 0)

    def test_multi_dim_profile(self):
        inst = Instance(
            [Item(0, 2, np.array([0.5, 0.1]), 0), Item(1, 3, np.array([0.1, 0.8]), 1)]
        )
        _, loads = load_profile(inst)
        assert loads.shape == (3, 2)
        assert loads[1] == pytest.approx([0.6, 0.9])


class TestHeightBound:
    def test_single_item_equals_duration(self):
        assert height_lower_bound(inst_1d((0, 3, 0.5))) == pytest.approx(3.0)

    def test_two_conflicting_items_need_two_bins(self):
        # both 0.6 wide, overlapping on [1, 2): ceil(1.2) = 2 there
        inst = inst_1d((0, 2, 0.6), (1, 3, 0.6))
        assert height_lower_bound(inst) == pytest.approx(1 + 2 + 1)

    def test_ceil_guard_against_float_noise(self):
        # ten 0.1-items sum to 1.0000000000000002 without the guard
        inst = Instance.from_tuples([(0, 1, [0.1])] * 10)
        assert height_lower_bound(inst) == pytest.approx(1.0)

    def test_respects_capacity(self):
        inst = inst_1d((0, 1, 60.0), (0, 1, 60.0), capacity=[100.0])
        assert height_lower_bound(inst) == pytest.approx(2.0)

    def test_max_over_dimensions(self):
        inst = Instance(
            [Item(0, 1, np.array([0.9, 0.1]), 0), Item(0, 1, np.array([0.9, 0.1]), 1)]
        )
        # dim 0 total 1.8 -> 2 bins
        assert height_lower_bound(inst) == pytest.approx(2.0)


class TestBoundRelations:
    @pytest.mark.parametrize("seed", range(5))
    def test_height_dominates_others(self, seed):
        inst = UniformWorkload(d=2, n=80, mu=8, T=50, B=10).sample_seeded(seed)
        h = height_lower_bound(inst)
        assert h >= utilization_lower_bound(inst) - 1e-9
        assert h >= span_lower_bound(inst) - 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_fractional_below_ceil(self, seed):
        inst = UniformWorkload(d=2, n=80, mu=8, T=50, B=10).sample_seeded(seed)
        assert fractional_height_bound(inst) <= height_lower_bound(inst) + 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_utilization_below_fractional_times_d(self, seed):
        # the Lemma 1(ii) proof chain: util <= fractional height
        inst = UniformWorkload(d=3, n=60, mu=5, T=40, B=10).sample_seeded(seed)
        assert utilization_lower_bound(inst) <= fractional_height_bound(inst) + 1e-9

    def test_opt_lower_bound_is_max(self, uniform_small):
        bounds = all_lower_bounds(uniform_small)
        assert opt_lower_bound(uniform_small) == pytest.approx(max(bounds.values()))

    def test_all_lower_bounds_keys(self, uniform_small):
        assert set(all_lower_bounds(uniform_small)) == {"height", "utilization", "span"}


class TestAgainstExactOpt:
    @pytest.mark.parametrize("seed", range(4))
    def test_bounds_below_exact_opt_small(self, seed):
        inst = UniformWorkload(d=2, n=12, mu=3, T=10, B=4).sample_seeded(seed)
        opt = optimum_cost(inst)
        for name, val in all_lower_bounds(inst).items():
            assert val <= opt + 1e-9, f"bound {name}={val} exceeds OPT={opt}"

    def test_height_bound_tight_on_disjoint_items(self):
        inst = inst_1d((0, 1, 0.5), (2, 3, 0.5))
        assert height_lower_bound(inst) == pytest.approx(optimum_cost(inst))
