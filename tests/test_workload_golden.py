"""Seed-stability golden tests for the workload generators.

Every generator's ``sample_seeded`` stream is hashed (uid, arrival,
departure, size vector — all at 12 significant digits) and pinned
against golden digests.  These hashes are load-bearing: the verification
harness's fuzz corpus, the perf-baseline suite, and every experiment
script assume a given ``(generator, seed)`` pair is the *same instance
forever*.  A failing test here means a generator's RNG consumption
changed — which silently invalidates BENCH trajectories and makes
reported fuzz violations unreplayable — so either restore the old
draw order or consciously re-pin (and note it in CHANGES.md).
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.workloads.composite import MixtureWorkload, SpikeWorkload
from repro.workloads.correlated import CorrelatedWorkload
from repro.workloads.poisson import PoissonWorkload
from repro.workloads.trace import CloudTraceWorkload
from repro.workloads.uniform import UniformWorkload


def stream_digest(instance: Instance) -> str:
    """A 64-bit hex digest of the full item stream at 12 significant digits."""
    h = hashlib.sha256()
    for it in instance.items:
        h.update(f"{it.uid}|{it.arrival:.12g}|{it.departure:.12g}|".encode())
        h.update("|".join(f"{s:.12g}" for s in np.asarray(it.size)).encode())
        h.update(b"\n")
    return h.hexdigest()[:16]


def _generators():
    return {
        "uniform": UniformWorkload(d=2, n=40, mu=5, T=30, B=10),
        "uniform_d4_B100": UniformWorkload(d=4, n=25, mu=10, T=50, B=100),
        "poisson": PoissonWorkload(d=2, rate=1.5, horizon=20.0, min_items=4),
        "correlated": CorrelatedWorkload(d=3, n=30, rho=0.7, mu=8),
        "trace": CloudTraceWorkload(),
        "mixture": MixtureWorkload(components=(
            UniformWorkload(d=2, n=10, mu=4),
            PoissonWorkload(d=2, rate=1.0, horizon=10.0, min_items=2),
        )),
        "spike": SpikeWorkload(base=UniformWorkload(d=2, n=15, mu=4, T=20)),
    }


#: (generator key, seed) -> pinned digest of the sampled item stream.
GOLDEN = {
    ("uniform", 0): "28de9d87e111abe6",
    ("uniform", 7): "49a6f30349cfe389",
    ("uniform_d4_B100", 0): "024aea24f30d2fa0",
    ("uniform_d4_B100", 7): "d726c32ba2fc0dbb",
    ("poisson", 0): "c4da133385cc6e7c",
    ("poisson", 7): "d58170d4857a2e59",
    ("correlated", 0): "811fd0a9fe39999e",
    ("correlated", 7): "6fbbfdc3b78fcd5f",
    ("trace", 0): "59cee98e003554e9",
    ("trace", 7): "20a17e096ea1af7a",
    ("mixture", 0): "8d2009e963f3b095",
    ("mixture", 7): "b2cd5570abd7ef99",
    ("spike", 0): "bab3753de867cd26",
    ("spike", 7): "3c3905fe4cc7dcd0",
}


@pytest.mark.parametrize("key,seed", sorted(GOLDEN))
def test_generator_stream_is_pinned(key, seed):
    gen = _generators()[key]
    assert stream_digest(gen.sample_seeded(seed)) == GOLDEN[(key, seed)]


@pytest.mark.parametrize("key", sorted(_generators()))
def test_sample_seeded_is_repeatable(key):
    """Two calls with the same seed yield the identical stream."""
    gen = _generators()[key]
    assert stream_digest(gen.sample_seeded(3)) == stream_digest(gen.sample_seeded(3))


@pytest.mark.parametrize("key", sorted(_generators()))
def test_different_seeds_differ(key):
    """Distinct seeds yield distinct streams (no seed collapse)."""
    gen = _generators()[key]
    assert stream_digest(gen.sample_seeded(0)) != stream_digest(gen.sample_seeded(1))


def test_verify_corpus_is_pinned():
    """The fuzz corpus itself is a pure function of its seed."""
    from repro.verify.generators import corpus_list

    a = [stream_digest(c.instance) for c in corpus_list(22, seed=1)]
    b = [stream_digest(c.instance) for c in corpus_list(22, seed=1)]
    assert a == b
    c = [stream_digest(c.instance) for c in corpus_list(22, seed=2)]
    assert a != c
