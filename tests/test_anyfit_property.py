"""The defining Any Fit property, verified by packing replay.

An Any Fit algorithm never opens a new bin when the arriving item fits a
bin of its candidate list.  For every algorithm whose list contains *all*
open bins (everything except Next Fit), this is checkable from the final
packing alone: replay the event stream with the engine's exact ordering
and, whenever an item is the first of its bin, assert no already-open bin
could have held it.  Next Fit keeps only its most recent bin as a
candidate, so its (weaker) property is checked separately.

All seven registry policies are exercised here; the independently
implemented auditor in :mod:`repro.verify.invariants` is cross-checked
against this file's replay on the same packings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from repro.core.events import EventKind, event_stream
from repro.core.packing import Packing
from repro.core.vectors import EPS
from repro.simulation.runner import run
from repro.verify.invariants import check_any_fit
from repro.workloads.uniform import UniformWorkload

FULL_LIST_ALGORITHMS = [a for a in PAPER_ALGORITHMS if a != "next_fit"]


def assert_any_fit_property(packing: Packing) -> None:
    """Replay the packing chronologically and check every bin opening."""
    inst = packing.instance
    cap = inst.capacity
    slack = cap + EPS * np.maximum(cap, 1.0)
    loads: dict = {}  # bin index -> current load vector
    members: dict = {}  # bin index -> set of active uids

    for ev in event_stream(inst):
        bin_index = packing.assignment[ev.item.uid]
        if ev.kind is EventKind.DEPARTURE:
            members[bin_index].discard(ev.item.uid)
            loads[bin_index] = loads[bin_index] - ev.item.size
            if not members[bin_index]:
                del members[bin_index]
                del loads[bin_index]
            continue
        # arrival
        if bin_index not in loads:
            # a new bin was opened: the Any Fit property demands that no
            # currently open bin fits the item
            for other, load in loads.items():
                assert np.any(load + ev.item.size > slack), (
                    f"Any Fit violated: item {ev.item.uid} opened bin "
                    f"{bin_index} at t={ev.time} although bin {other} "
                    f"(load {load}) fit it"
                )
            loads[bin_index] = np.zeros(inst.d)
            members[bin_index] = set()
        loads[bin_index] = loads[bin_index] + ev.item.size
        members[bin_index].add(ev.item.uid)


@pytest.mark.parametrize("algorithm", FULL_LIST_ALGORITHMS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_any_fit_property_uniform(algorithm, seed):
    inst = UniformWorkload(d=2, n=80, mu=8, T=60, B=10).sample_seeded(seed)
    packing = run(make_algorithm(algorithm), inst)
    assert_any_fit_property(packing)


@pytest.mark.parametrize("algorithm", FULL_LIST_ALGORITHMS)
def test_any_fit_property_dense_1d(algorithm):
    inst = UniformWorkload(d=1, n=120, mu=20, T=40, B=10).sample_seeded(3)
    packing = run(make_algorithm(algorithm), inst)
    assert_any_fit_property(packing)


@pytest.mark.parametrize("algorithm", FULL_LIST_ALGORITHMS)
def test_any_fit_property_5d(algorithm):
    inst = UniformWorkload(d=5, n=60, mu=5, T=30, B=10).sample_seeded(4)
    packing = run(make_algorithm(algorithm), inst)
    assert_any_fit_property(packing)


def assert_next_fit_property(packing: Packing) -> None:
    """Replay the packing and check Next Fit's single-candidate discipline.

    Every arrival goes to the *current* bin (the most recently opened
    one, while it is still open) or opens a new bin; a new bin is legal
    only when there is no current bin or the current bin does not fit.
    """
    inst = packing.instance
    cap = inst.capacity
    slack = cap + EPS * np.maximum(cap, 1.0)
    loads: dict = {}
    members: dict = {}
    current = None  # index of the current bin, or None once it closed

    for ev in event_stream(inst):
        bin_index = packing.assignment[ev.item.uid]
        if ev.kind is EventKind.DEPARTURE:
            members[bin_index].discard(ev.item.uid)
            loads[bin_index] = loads[bin_index] - ev.item.size
            if not members[bin_index]:
                del members[bin_index]
                del loads[bin_index]
                if current == bin_index:
                    current = None
            continue
        if bin_index not in loads:
            if current is not None:
                assert np.any(loads[current] + ev.item.size > slack), (
                    f"Next Fit violated: item {ev.item.uid} opened bin "
                    f"{bin_index} at t={ev.time} although the current bin "
                    f"{current} (load {loads[current]}) fit it"
                )
            current = bin_index
            loads[bin_index] = np.zeros(inst.d)
            members[bin_index] = set()
        else:
            assert bin_index == current, (
                f"Next Fit packed item {ev.item.uid} into released bin "
                f"{bin_index} (current is {current})"
            )
        loads[bin_index] = loads[bin_index] + ev.item.size
        members[bin_index].add(ev.item.uid)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_next_fit_property_uniform(seed):
    inst = UniformWorkload(d=2, n=80, mu=8, T=60, B=10).sample_seeded(seed)
    packing = run(make_algorithm("next_fit"), inst)
    assert_next_fit_property(packing)


@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
@pytest.mark.parametrize("seed", [0, 5])
def test_auditor_agrees_with_replay(algorithm, seed):
    """The repro.verify auditor and this file's replay must agree."""
    inst = UniformWorkload(d=2, n=70, mu=6, T=50, B=10).sample_seeded(seed)
    packing = run(make_algorithm(algorithm), inst)
    violations = check_any_fit(packing)
    if algorithm == "next_fit":
        # Next Fit is exempt from the full-list property; its own
        # discipline must still hold.
        assert_next_fit_property(packing)
    else:
        assert violations == []
        assert_any_fit_property(packing)


def test_auditor_flags_next_fit_full_list_break():
    """An instance where Next Fit provably breaks the full-list property."""
    from repro.core.instance import Instance

    inst = Instance.from_tuples([
        (0.0, 1.0, [0.6]),
        (0.0, 1.0, [0.7]),
        (0.0, 1.0, [0.4]),  # fits bin 0 (0.6+0.4) but NF only sees bin 1
    ])
    packing = run(make_algorithm("next_fit"), inst)
    assert packing.num_bins == 3
    assert check_any_fit(packing)  # the full-list auditor must flag it
    assert_next_fit_property(packing)  # while NF's own discipline holds


@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
def test_all_packings_temporally_feasible(algorithm, uniform_small):
    run(make_algorithm(algorithm), uniform_small, validate=True)
