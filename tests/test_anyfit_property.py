"""The defining Any Fit property, verified by packing replay.

An Any Fit algorithm never opens a new bin when the arriving item fits a
bin of its candidate list.  For every algorithm whose list contains *all*
open bins (everything except Next Fit), this is checkable from the final
packing alone: replay the event stream with the engine's exact ordering
and, whenever an item is the first of its bin, assert no already-open bin
could have held it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from repro.core.events import EventKind, event_stream
from repro.core.packing import Packing
from repro.core.vectors import EPS
from repro.simulation.runner import run
from repro.workloads.uniform import UniformWorkload

FULL_LIST_ALGORITHMS = [a for a in PAPER_ALGORITHMS if a != "next_fit"]


def assert_any_fit_property(packing: Packing) -> None:
    """Replay the packing chronologically and check every bin opening."""
    inst = packing.instance
    cap = inst.capacity
    slack = cap + EPS * np.maximum(cap, 1.0)
    loads: dict = {}  # bin index -> current load vector
    members: dict = {}  # bin index -> set of active uids

    for ev in event_stream(inst):
        bin_index = packing.assignment[ev.item.uid]
        if ev.kind is EventKind.DEPARTURE:
            members[bin_index].discard(ev.item.uid)
            loads[bin_index] = loads[bin_index] - ev.item.size
            if not members[bin_index]:
                del members[bin_index]
                del loads[bin_index]
            continue
        # arrival
        if bin_index not in loads:
            # a new bin was opened: the Any Fit property demands that no
            # currently open bin fits the item
            for other, load in loads.items():
                assert np.any(load + ev.item.size > slack), (
                    f"Any Fit violated: item {ev.item.uid} opened bin "
                    f"{bin_index} at t={ev.time} although bin {other} "
                    f"(load {load}) fit it"
                )
            loads[bin_index] = np.zeros(inst.d)
            members[bin_index] = set()
        loads[bin_index] = loads[bin_index] + ev.item.size
        members[bin_index].add(ev.item.uid)


@pytest.mark.parametrize("algorithm", FULL_LIST_ALGORITHMS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_any_fit_property_uniform(algorithm, seed):
    inst = UniformWorkload(d=2, n=80, mu=8, T=60, B=10).sample_seeded(seed)
    packing = run(make_algorithm(algorithm), inst)
    assert_any_fit_property(packing)


@pytest.mark.parametrize("algorithm", FULL_LIST_ALGORITHMS)
def test_any_fit_property_dense_1d(algorithm):
    inst = UniformWorkload(d=1, n=120, mu=20, T=40, B=10).sample_seeded(3)
    packing = run(make_algorithm(algorithm), inst)
    assert_any_fit_property(packing)


@pytest.mark.parametrize("algorithm", FULL_LIST_ALGORITHMS)
def test_any_fit_property_5d(algorithm):
    inst = UniformWorkload(d=5, n=60, mu=5, T=30, B=10).sample_seeded(4)
    packing = run(make_algorithm(algorithm), inst)
    assert_any_fit_property(packing)


@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
def test_all_packings_temporally_feasible(algorithm, uniform_small):
    run(make_algorithm(algorithm), uniform_small, validate=True)
