"""Shared fixtures and Hypothesis profiles for the DVBP reproduction suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.algorithms.registry import PAPER_ALGORITHMS
from repro.core.instance import Instance
from repro.core.items import Item
from repro.workloads.uniform import UniformWorkload

try:
    from hypothesis import HealthCheck, settings
except ImportError:  # pragma: no cover - hypothesis is part of the test extra
    pass
else:
    # tier1: the default profile — small, derandomised, so the tier-1 suite
    # is fast and bit-reproducible.  ci: the fuzz job's wider search
    # (HYPOTHESIS_PROFILE=ci), still seed-pinned via derandomize.
    settings.register_profile(
        "tier1",
        max_examples=25,
        derandomize=True,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile(
        "ci",
        max_examples=200,
        derandomize=True,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "tier1"))


@pytest.fixture
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_instance():
    """Three overlapping 1-D items; easy to reason about by hand.

    Timeline: item 0 on [0, 4) size 0.5; item 1 on [1, 3) size 0.4;
    item 2 on [2, 6) size 0.7.  Items 0+1 fit together; item 2 fits with
    neither while they are active.
    """
    return Instance(
        [
            Item(0.0, 4.0, np.array([0.5]), 0),
            Item(1.0, 3.0, np.array([0.4]), 1),
            Item(2.0, 6.0, np.array([0.7]), 2),
        ]
    )


@pytest.fixture
def two_dim_instance():
    """Four 2-D items exercising dimension-specific blocking.

    Items 0 and 1 conflict in dim 0 only; items 2 and 3 conflict in
    dim 1 only; cross pairs fit together.
    """
    return Instance(
        [
            Item(0.0, 2.0, np.array([0.8, 0.1]), 0),
            Item(0.0, 2.0, np.array([0.7, 0.1]), 1),
            Item(0.0, 2.0, np.array([0.1, 0.8]), 2),
            Item(0.0, 2.0, np.array([0.1, 0.7]), 3),
        ]
    )


@pytest.fixture
def uniform_small():
    """A small Section 7-style random instance (d=2, n=60, mu=5)."""
    return UniformWorkload(d=2, n=60, mu=5, T=50, B=10).sample_seeded(7)


@pytest.fixture(params=PAPER_ALGORITHMS)
def paper_algorithm_name(request):
    """Parametrised over the seven Section 7 algorithms."""
    return request.param
