"""Unit tests for repro.core.intervals."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import (
    Interval,
    breakpoints,
    intervals_partition,
    merge_intervals,
    total_span,
    union_length,
)


def ivs(*pairs):
    return [Interval(a, b) for a, b in pairs]


class TestInterval:
    def test_length(self):
        assert Interval(1.0, 3.5).length == 2.5

    def test_empty_interval_zero_length(self):
        assert Interval(2.0, 2.0).length == 0.0
        assert Interval(3.0, 2.0).length == 0.0

    def test_empty_flag(self):
        assert Interval(2.0, 2.0).empty
        assert not Interval(2.0, 2.1).empty

    def test_contains_half_open(self):
        iv = Interval(1.0, 2.0)
        assert iv.contains(1.0)
        assert iv.contains(1.999)
        assert not iv.contains(2.0)
        assert not iv.contains(0.999)

    def test_overlaps(self):
        assert Interval(0, 2).overlaps(Interval(1, 3))
        assert not Interval(0, 2).overlaps(Interval(2, 3))  # half-open abut
        assert not Interval(0, 1).overlaps(Interval(2, 3))

    def test_intersection(self):
        got = Interval(0, 5).intersection(Interval(3, 8))
        assert got == Interval(3, 5)

    def test_intersection_empty(self):
        assert Interval(0, 1).intersection(Interval(2, 3)).empty

    def test_shift(self):
        assert Interval(1, 2).shift(3) == Interval(4, 5)

    def test_ordering(self):
        assert Interval(0, 5) < Interval(1, 2)


class TestMerge:
    def test_disjoint_preserved(self):
        out = merge_intervals(ivs((0, 1), (2, 3)))
        assert out == ivs((0, 1), (2, 3))

    def test_overlapping_merged(self):
        out = merge_intervals(ivs((0, 2), (1, 3)))
        assert out == ivs((0, 3))

    def test_abutting_merged(self):
        out = merge_intervals(ivs((0, 1), (1, 2)))
        assert out == ivs((0, 2))

    def test_nested_merged(self):
        out = merge_intervals(ivs((0, 10), (2, 3)))
        assert out == ivs((0, 10))

    def test_unsorted_input(self):
        out = merge_intervals(ivs((5, 6), (0, 1), (0.5, 5.5)))
        assert out == ivs((0, 6))

    def test_empty_dropped(self):
        out = merge_intervals(ivs((1, 1), (2, 3)))
        assert out == ivs((2, 3))

    def test_empty_input(self):
        assert merge_intervals([]) == []


class TestUnionLength:
    def test_single(self):
        assert union_length(ivs((0, 4))) == 4.0

    def test_overlap_counted_once(self):
        assert union_length(ivs((0, 2), (1, 3))) == 3.0

    def test_gap_not_counted(self):
        assert union_length(ivs((0, 1), (3, 5))) == 3.0

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)).map(
                lambda t: Interval(min(t), max(t))
            ),
            max_size=12,
        )
    )
    @settings(max_examples=100)
    def test_union_at_most_sum_and_at_least_max(self, intervals):
        u = union_length(intervals)
        total = sum(iv.length for iv in intervals)
        longest = max((iv.length for iv in intervals), default=0.0)
        assert u <= total + 1e-9
        assert u >= longest - 1e-9


class TestTotalSpan:
    def test_hull(self):
        assert total_span(ivs((1, 2), (5, 9))) == Interval(1, 9)

    def test_empty_family(self):
        assert total_span([]).empty


class TestPartitionCheck:
    def test_exact_partition(self):
        whole = Interval(0, 10)
        assert intervals_partition(ivs((0, 4), (4, 7), (7, 10)), whole)

    def test_gap_detected(self):
        assert not intervals_partition(ivs((0, 4), (5, 10)), Interval(0, 10))

    def test_overlap_detected(self):
        assert not intervals_partition(ivs((0, 6), (5, 10)), Interval(0, 10))

    def test_wrong_extent_detected(self):
        assert not intervals_partition(ivs((0, 4), (4, 9)), Interval(0, 10))

    def test_empty_pieces_ignored(self):
        assert intervals_partition(ivs((0, 5), (5, 5), (5, 10)), Interval(0, 10))

    def test_empty_whole_needs_no_pieces(self):
        assert intervals_partition([], Interval(3, 3))
        assert not intervals_partition(ivs((0, 1)), Interval(3, 3))


class TestBreakpoints:
    def test_basic(self):
        assert breakpoints(ivs((0, 2), (1, 5))) == [0, 1, 2, 5]

    def test_duplicates_collapsed(self):
        assert breakpoints(ivs((0, 2), (0, 2))) == [0, 2]

    def test_empty_intervals_skipped(self):
        assert breakpoints(ivs((1, 1))) == []
