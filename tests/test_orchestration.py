"""Tests for repro.orchestration: checkpoint store, faults, resumable sweep.

The fault-injection tests drive real failures through the deterministic
``REPRO_FAULT_*`` harness: raising workers (retry path), ``os._exit``
workers (BrokenProcessPool recovery), and hanging workers (unit-timeout
pool recycling).  The governing invariant throughout: recovery never
changes results.
"""

from __future__ import annotations

import json

import pytest

from repro.core.errors import CheckpointError, UnitFailedError
from repro.observability.stats import StatsCollector
from repro.orchestration import (
    CheckpointStore,
    FaultPlan,
    InjectedWorkerFault,
    RetryPolicy,
    call_with_retry,
    fault_aware_unit,
    resumable_sweep,
    sweep_fingerprint,
)
from repro.orchestration.checkpoint import MANIFEST, record_to_result, result_to_record
from repro.simulation.parallel import UnitResult, build_payloads, parallel_sweep
from repro.workloads.base import generate_batch
from repro.workloads.uniform import UniformWorkload

ALGOS = ["first_fit", "move_to_front"]
SEEDED = ["first_fit", "random_fit"]
KW = {"random_fit": {"seed": 123}}
FAST_POLICY = RetryPolicy(retries=2, backoff_base_s=0.001)


@pytest.fixture(scope="module")
def batch():
    gen = UniformWorkload(d=2, n=30, mu=5, T=25, B=10)
    return generate_batch(gen, 5, seed=11)


def flatten(results):
    return {
        (name, r.instance_index): (r.cost, r.num_bins, r.lower_bound)
        for name, units in results.items()
        for r in units
    }


def _unit(i, cost=10.0):
    return UnitResult(
        algorithm="first_fit", instance_index=i, cost=cost, num_bins=2,
        lower_bound=5.0,
    )


class TestCheckpointStore:
    def test_append_flush_reload(self, tmp_path):
        store = CheckpointStore(str(tmp_path), fingerprint="fp")
        store.append(_unit(0))
        store.append(_unit(1))
        name = store.flush()
        assert name == "shard-0000.jsonl"
        assert (tmp_path / name).exists()
        assert (tmp_path / MANIFEST).exists()
        reloaded = CheckpointStore(str(tmp_path), fingerprint="fp")
        assert len(reloaded) == 2
        assert ("first_fit", 0) in reloaded
        assert reloaded.completed[("first_fit", 1)].cost == 10.0

    def test_empty_flush_is_noop(self, tmp_path):
        store = CheckpointStore(str(tmp_path), fingerprint="fp")
        assert store.flush() is None
        assert store.flushes == 0

    def test_append_dedups_by_unit_key(self, tmp_path):
        store = CheckpointStore(str(tmp_path), fingerprint="fp")
        store.append(_unit(0, cost=10.0))
        store.append(_unit(0, cost=99.0))  # duplicate key: first wins
        store.flush()
        reloaded = CheckpointStore(str(tmp_path), fingerprint="fp")
        assert len(reloaded) == 1
        assert reloaded.completed[("first_fit", 0)].cost == 10.0

    def test_multiple_flushes_make_immutable_shards(self, tmp_path):
        store = CheckpointStore(str(tmp_path), fingerprint="fp")
        store.append(_unit(0))
        first = store.flush()
        before = (tmp_path / first).read_bytes()
        store.append(_unit(1))
        second = store.flush()
        assert second != first
        assert (tmp_path / first).read_bytes() == before

    def test_fingerprint_mismatch_raises(self, tmp_path):
        store = CheckpointStore(str(tmp_path), fingerprint="fp-a")
        store.append(_unit(0))
        store.flush()
        with pytest.raises(CheckpointError):
            CheckpointStore(str(tmp_path), fingerprint="fp-b")

    def test_hash_mismatch_shard_dropped_with_warning(self, tmp_path):
        store = CheckpointStore(str(tmp_path), fingerprint="fp")
        store.append(_unit(0))
        shard = store.flush()
        # corrupt the shard in place (silent bit rot)
        path = tmp_path / shard
        path.write_text(path.read_text().replace("10.0", "66.0"))
        with pytest.warns(RuntimeWarning, match="hash mismatch"):
            reloaded = CheckpointStore(str(tmp_path), fingerprint="fp")
        assert len(reloaded) == 0  # unit re-runs rather than trusting bad data

    def test_orphan_shard_adopted(self, tmp_path):
        store = CheckpointStore(str(tmp_path), fingerprint="fp")
        store.append(_unit(0))
        store.flush()
        # crash between shard rename and manifest rename: no manifest
        (tmp_path / MANIFEST).unlink()
        reloaded = CheckpointStore(str(tmp_path), fingerprint="fp")
        assert len(reloaded) == 1  # completed work is never thrown away

    def test_torn_trailing_line_tolerated(self, tmp_path):
        store = CheckpointStore(str(tmp_path), fingerprint="fp")
        store.append(_unit(0))
        store.append(_unit(1))
        shard = store.flush()
        path = tmp_path / shard
        lines = path.read_text().splitlines(keepends=True)
        path.write_text(lines[0] + lines[1][: len(lines[1]) // 2])  # torn write
        (tmp_path / MANIFEST).unlink()  # force adoption path (hash changed)
        with pytest.warns(RuntimeWarning, match="undecodable record"):
            reloaded = CheckpointStore(str(tmp_path), fingerprint="fp")
        assert len(reloaded) == 1  # the intact record before the tear survives

    def test_tmp_files_ignored(self, tmp_path):
        (tmp_path / "shard-0000.jsonl.tmp").write_text("{garbage")
        store = CheckpointStore(str(tmp_path), fingerprint="fp")
        assert len(store) == 0

    def test_record_roundtrip(self):
        unit = _unit(3, cost=123.456789)
        assert record_to_result(result_to_record(unit)) == unit
        # JSON text roundtrip must preserve floats exactly (bit-identity)
        rec = json.loads(json.dumps(result_to_record(unit)))
        assert record_to_result(rec).cost == unit.cost


class TestSweepFingerprint:
    def test_sensitive_to_everything(self, batch):
        base = sweep_fingerprint(ALGOS, batch, None, "classic")
        assert sweep_fingerprint(ALGOS, batch, None, "classic") == base
        assert sweep_fingerprint(ALGOS[::-1], batch, None, "classic") != base
        assert sweep_fingerprint(ALGOS, batch[:-1], None, "classic") != base
        assert sweep_fingerprint(ALGOS, batch, None, "fast") != base
        assert sweep_fingerprint(ALGOS, batch, {"first_fit": {}}, "classic") != base


class TestFaultPlan:
    def test_parse_from_env(self):
        plan = FaultPlan.from_env({
            "REPRO_FAULT_UNITS": "first_fit:3, *:7 ,4",
            "REPRO_FAULT_MODE": "raise",
            "REPRO_FAULT_TIMES": "2",
        })
        assert plan.units == {("first_fit", 3), ("*", 7), ("*", 4)}
        assert plan.times == 2
        assert plan.should_fail("first_fit", 3, attempt=0)
        assert plan.should_fail("first_fit", 3, attempt=1)
        assert not plan.should_fail("first_fit", 3, attempt=2)
        assert plan.should_fail("move_to_front", 7, attempt=0)  # wildcard
        assert not plan.should_fail("move_to_front", 3, attempt=0)

    def test_empty_env_is_inactive(self):
        plan = FaultPlan.from_env({})
        assert not plan.active
        assert plan.kill_after_flushes is None

    def test_trigger_raises(self):
        plan = FaultPlan(units=frozenset({("a", 0)}), mode="raise")
        with pytest.raises(InjectedWorkerFault):
            plan.trigger("a", 0, attempt=0)
        plan.trigger("a", 0, attempt=1)  # past `times`: no-op


class TestRetryPolicy:
    def test_deterministic_backoff(self):
        policy = RetryPolicy(retries=3, backoff_base_s=0.1, backoff_factor=2.0,
                             max_backoff_s=0.3)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.3)  # capped
        assert policy.delay(0) == 0.0

    def test_call_with_retry_counts_and_recovers(self):
        col = StatsCollector()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ValueError("transient")
            return "ok"

        out = call_with_retry(flaky, RetryPolicy(retries=5, backoff_base_s=0),
                              collector=col, sleep=lambda _s: None)
        assert out == "ok"
        assert col.retries == 2

    def test_call_with_retry_exhausts(self):
        def always():
            raise ValueError("permanent")

        with pytest.raises(ValueError, match="permanent"):
            call_with_retry(always, RetryPolicy(retries=1, backoff_base_s=0),
                            sleep=lambda _s: None)


class TestResumableSweepEquivalence:
    def test_serial_matches_parallel_sweep(self, batch):
        base = parallel_sweep(SEEDED, batch, processes=0, algorithm_kwargs=KW)
        res = resumable_sweep(SEEDED, batch, processes=0, algorithm_kwargs=KW)
        assert flatten(res) == flatten(base)

    def test_pooled_matches_parallel_sweep(self, batch):
        base = parallel_sweep(SEEDED, batch, processes=0, algorithm_kwargs=KW)
        res = resumable_sweep(SEEDED, batch, processes=2, algorithm_kwargs=KW)
        assert flatten(res) == flatten(base)

    def test_parallel_sweep_routes_orchestration_kwargs(self, batch, tmp_path):
        base = parallel_sweep(ALGOS, batch, processes=0)
        routed = parallel_sweep(ALGOS, batch, processes=0,
                                checkpoint_dir=str(tmp_path))
        assert flatten(routed) == flatten(base)
        assert (tmp_path / MANIFEST).exists()


class TestResume:
    @pytest.mark.parametrize("engine", ["classic", "fast"])
    def test_interrupted_plus_resume_is_bit_identical(self, batch, tmp_path, engine):
        ckpt = str(tmp_path / engine)
        ref = resumable_sweep(SEEDED, batch, processes=0,
                              algorithm_kwargs=KW, engine=engine)
        resumable_sweep(SEEDED, batch, processes=0, algorithm_kwargs=KW,
                        engine=engine, checkpoint_dir=ckpt,
                        flush_every=2, max_units=4)
        col = StatsCollector()
        full = resumable_sweep(SEEDED, batch, processes=0, algorithm_kwargs=KW,
                               engine=engine, checkpoint_dir=ckpt, resume=True,
                               collector=col)
        assert flatten(full) == flatten(ref)
        assert col.units_resumed == 4

    def test_resume_requires_matching_sweep(self, batch, tmp_path):
        resumable_sweep(ALGOS, batch, processes=0,
                        checkpoint_dir=str(tmp_path), max_units=2)
        with pytest.raises(CheckpointError):
            resumable_sweep(ALGOS, batch[:-1], processes=0,
                            checkpoint_dir=str(tmp_path), resume=True)

    def test_without_resume_flag_units_recompute(self, batch, tmp_path):
        resumable_sweep(ALGOS, batch, processes=0,
                        checkpoint_dir=str(tmp_path), max_units=3)
        col = StatsCollector()
        resumable_sweep(ALGOS, batch, processes=0,
                        checkpoint_dir=str(tmp_path), collector=col)
        assert col.units_resumed == 0

    def test_stats_survive_checkpoint_roundtrip(self, batch, tmp_path):
        ckpt = str(tmp_path)
        resumable_sweep(ALGOS, batch, processes=0, collect_stats=True,
                        checkpoint_dir=ckpt, max_units=3)
        full = resumable_sweep(ALGOS, batch, processes=0, collect_stats=True,
                               checkpoint_dir=ckpt, resume=True)
        ref = resumable_sweep(ALGOS, batch, processes=0, collect_stats=True)
        got = {(n, r.instance_index): r.stats.deterministic_part()
               for n, units in full.items() for r in units}
        want = {(n, r.instance_index): r.stats.deterministic_part()
                for n, units in ref.items() for r in units}
        assert got == want


class TestInjectedFaults:
    def test_serial_raise_retries_to_success(self, batch, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_UNITS", "first_fit:1,*:3")
        monkeypatch.setenv("REPRO_FAULT_MODE", "raise")
        col = StatsCollector()
        res = resumable_sweep(ALGOS, batch, processes=0,
                              retry_policy=FAST_POLICY, collector=col)
        monkeypatch.delenv("REPRO_FAULT_UNITS")
        monkeypatch.delenv("REPRO_FAULT_MODE")
        ref = resumable_sweep(ALGOS, batch, processes=0)
        assert flatten(res) == flatten(ref)
        # first_fit:1, plus *:3 hits both algorithms
        assert col.retries == 3

    def test_pooled_raise_retries_to_success(self, batch, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_UNITS", "first_fit:2")
        monkeypatch.setenv("REPRO_FAULT_MODE", "raise")
        col = StatsCollector()
        res = resumable_sweep(ALGOS, batch, processes=2,
                              retry_policy=FAST_POLICY, collector=col)
        monkeypatch.delenv("REPRO_FAULT_UNITS")
        monkeypatch.delenv("REPRO_FAULT_MODE")
        ref = resumable_sweep(ALGOS, batch, processes=0)
        assert flatten(res) == flatten(ref)
        assert col.retries == 1

    def test_worker_exit_broken_pool_recovery(self, batch, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_UNITS", "first_fit:1")
        monkeypatch.setenv("REPRO_FAULT_MODE", "exit")
        col = StatsCollector()
        res = resumable_sweep(ALGOS, batch, processes=2,
                              retry_policy=FAST_POLICY, collector=col)
        monkeypatch.delenv("REPRO_FAULT_UNITS")
        monkeypatch.delenv("REPRO_FAULT_MODE")
        ref = resumable_sweep(ALGOS, batch, processes=0)
        # zero completed units lost, bit-identical results
        assert flatten(res) == flatten(ref)
        assert col.pool_restarts >= 1

    def test_hang_unit_timeout_pool_recycle(self, batch, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_UNITS", "move_to_front:0")
        monkeypatch.setenv("REPRO_FAULT_MODE", "hang")
        col = StatsCollector()
        res = resumable_sweep(ALGOS, batch, processes=2,
                              retry_policy=FAST_POLICY, unit_timeout=1.5,
                              collector=col)
        monkeypatch.delenv("REPRO_FAULT_UNITS")
        monkeypatch.delenv("REPRO_FAULT_MODE")
        ref = resumable_sweep(ALGOS, batch, processes=0)
        assert flatten(res) == flatten(ref)
        assert col.unit_timeouts >= 1
        assert col.pool_restarts >= 1

    def test_exhausted_budget_raises_after_flushing(self, batch, tmp_path,
                                                    monkeypatch):
        ckpt = str(tmp_path)
        monkeypatch.setenv("REPRO_FAULT_UNITS", "move_to_front:4")
        monkeypatch.setenv("REPRO_FAULT_MODE", "raise")
        monkeypatch.setenv("REPRO_FAULT_TIMES", "99")  # never recovers
        with pytest.raises(UnitFailedError):
            resumable_sweep(ALGOS, batch, processes=0, checkpoint_dir=ckpt,
                            flush_every=1,
                            retry_policy=RetryPolicy(retries=1,
                                                     backoff_base_s=0.001))
        # completed units were flushed before the failure surfaced...
        store = CheckpointStore(ckpt)
        assert len(store) > 0
        # ...so a resume after fixing the fault completes the sweep
        monkeypatch.delenv("REPRO_FAULT_UNITS")
        monkeypatch.delenv("REPRO_FAULT_MODE")
        monkeypatch.delenv("REPRO_FAULT_TIMES")
        col = StatsCollector()
        full = resumable_sweep(ALGOS, batch, processes=0, checkpoint_dir=ckpt,
                               resume=True, collector=col)
        ref = resumable_sweep(ALGOS, batch, processes=0)
        assert flatten(full) == flatten(ref)
        assert col.units_resumed == len(store)

    def test_fault_aware_unit_passthrough(self, batch):
        payload = build_payloads(["first_fit"], batch)[0]
        res = fault_aware_unit((0, payload))
        assert res.algorithm == "first_fit"
        assert res.instance_index == 0


class TestExperimentsDriver:
    def test_run_and_resume_skip(self, tmp_path):
        from repro.experiments.driver import run_experiments

        out_dir = str(tmp_path)
        first = run_experiments(names=["table2"], out_dir=out_dir)
        assert "Table 2" in first["table2"]
        assert (tmp_path / "table2.txt").exists()
        messages = []
        second = run_experiments(names=["table2"], out_dir=out_dir,
                                 resume=True, progress=messages.append)
        assert second["table2"].strip() == first["table2"].strip()
        assert any("skipping" in m for m in messages)

    def test_unknown_artifact_rejected_before_running(self):
        from repro.experiments.driver import run_experiments

        with pytest.raises(KeyError, match="unknown artifact"):
            run_experiments(names=["table9"])

    def test_registry_shape(self):
        from repro.experiments.driver import ARTIFACTS

        assert set(ARTIFACTS) == {"table1", "table2", "figures123", "figure4"}
        assert ARTIFACTS["figure4"].checkpointable
        for artifact in ARTIFACTS.values():
            assert artifact.description

    def test_every_runner_accepts_the_driver_calling_convention(self):
        # regression: figures123_artifact once rejected the positional
        # config the driver passes, breaking any run that included it
        import inspect

        from repro.experiments.config import QUICK
        from repro.experiments.driver import ARTIFACTS

        for artifact in ARTIFACTS.values():
            inspect.signature(artifact.runner).bind(
                QUICK, processes=0, engine="classic", checkpoint_dir=None,
                resume=False, retries=0, unit_timeout=None,
            )

    def test_figures123_artifact_renders_all_three(self):
        from repro.experiments.driver import run_experiments

        out = run_experiments(names=["figures123"])
        for fig in ("Figure 1", "Figure 2", "Figure 3"):
            assert fig in out["figures123"]
