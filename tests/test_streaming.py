"""Streaming engine, merge order, and workload stream adapters.

The contract under test is ISSUE-level: the streaming engine must be
*bit-identical* in final cost and assignment to the classic engine on
every materialised instance, while holding only O(peak-live-items)
state; the streaming merge must reproduce the classic ``(time, kind,
seq)`` event order — departures before arrivals at equal times —
exactly; and the lazy workload streams must emit sorted arrivals without
materialising the item list.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from repro.core.errors import AlgorithmError, StreamOrderError
from repro.core.events import EventKind, event_stream
from repro.core.instance import Instance
from repro.core.items import Item
from repro.observability.sinks import MemorySink
from repro.observability.stats import StatsCollector
from repro.simulation.runner import effective_engine, run
from repro.streaming import StreamingEngine, merge_events, streaming_run
from repro.verify import compare_with_streaming, corpus
from repro.verify.strategies import instances, policies
from repro.workloads.poisson import PoissonWorkload
from repro.workloads.uniform import UniformWorkload


def _kwargs(policy: str) -> dict:
    return {"seed": 0} if policy == "random_fit" else {}


# ----------------------------------------------------------------------
# merge order
# ----------------------------------------------------------------------
class TestMergeEvents:
    def test_matches_event_stream_on_corpus(self):
        for entry in corpus(22, seed=11):
            inst = entry.instance
            merged = list(merge_events(inst.items))
            classic = event_stream(inst)
            assert [(e.time, e.kind, e.item.uid) for e in merged] == [
                (e.time, e.kind, e.item.uid) for e in classic
            ], entry.recipe

    def test_departures_fire_before_arrivals_at_equal_times(self):
        # item 0 departs at t=2 exactly when item 1 arrives
        inst = Instance.from_tuples([(0.0, 2.0, [0.5]), (2.0, 4.0, [0.5])])
        kinds = [(e.time, e.kind) for e in merge_events(inst.items)]
        assert kinds == [
            (0.0, EventKind.ARRIVAL),
            (2.0, EventKind.DEPARTURE),
            (2.0, EventKind.ARRIVAL),
            (4.0, EventKind.DEPARTURE),
        ]
        assert EventKind.DEPARTURE < EventKind.ARRIVAL

    def test_out_of_order_stream_raises(self):
        bad = [
            Item(3.0, 4.0, np.array([0.5]), 0),
            Item(1.0, 2.0, np.array([0.5]), 1),
        ]
        with pytest.raises(StreamOrderError):
            list(merge_events(bad))

    @given(inst=instances(max_items=16))
    @settings(max_examples=40)
    def test_merge_order_property(self, inst):
        merged = list(merge_events(inst.items))
        classic = event_stream(inst)
        assert [(e.time, e.kind, e.item.uid) for e in merged] == [
            (e.time, e.kind, e.item.uid) for e in classic
        ]


# ----------------------------------------------------------------------
# engine bit-identity
# ----------------------------------------------------------------------
class TestStreamingBitIdentity:
    def test_all_corpus_recipes_all_policies(self):
        # the full 22-recipe corpus through every Section 7 policy
        for entry in corpus(22, seed=20230613):
            inst = entry.instance
            for policy in PAPER_ALGORITHMS:
                classic = run(make_algorithm(policy, **_kwargs(policy)), inst)
                streamed = streaming_run(
                    make_algorithm(policy, **_kwargs(policy)), inst
                )
                where = f"{entry.recipe}/{policy}"
                assert streamed.cost == classic.cost, where
                assert streamed.num_bins == classic.num_bins, where
                assert dict(streamed.assignment) == dict(classic.assignment), where

    @given(inst=instances(max_items=18), policy=policies())
    @settings(max_examples=50)
    def test_bit_identity_property(self, inst, policy):
        classic = run(make_algorithm(policy, **_kwargs(policy)), inst)
        streamed = streaming_run(make_algorithm(policy, **_kwargs(policy)), inst)
        assert streamed.cost == classic.cost
        assert dict(streamed.assignment) == dict(classic.assignment)

    def test_oracle_passes_and_catches(self):
        inst = UniformWorkload(d=2, n=200, mu=10).sample_seeded(3)
        good = run("first_fit", inst)
        assert compare_with_streaming(good, "first_fit") == []
        # a packing labelled with the wrong policy must be flagged
        other = run("next_fit", inst)
        assert other.cost != good.cost  # policies genuinely differ here
        violations = compare_with_streaming(other, "first_fit")
        assert violations and all(v.check == "streaming" for v in violations)

    def test_runner_engine_streaming(self):
        inst = UniformWorkload(d=2, n=150, mu=10).sample_seeded(5)
        classic = run("move_to_front", inst)
        streamed = run("move_to_front", inst, engine="streaming", validate=True)
        assert streamed.cost == classic.cost
        assert dict(streamed.assignment) == dict(classic.assignment)
        assert effective_engine("move_to_front", "streaming") == "streaming"
        # observers force the classic engine (streaming has no observer hooks)
        assert effective_engine("move_to_front", "streaming",
                                observers=[object()]) == "classic"


# ----------------------------------------------------------------------
# engine mechanics: bounded memory, flushes, counters
# ----------------------------------------------------------------------
class TestStreamingEngineMechanics:
    def test_bounded_memory_on_long_poisson_stream(self):
        workload = PoissonWorkload(d=2, rate=50.0, horizon=200.0)
        engine = StreamingEngine(
            make_algorithm("next_fit"), workload.capacity,
            record_assignment=False,
        )
        result = engine.run(workload.stream_seeded(0))
        assert result.assignment is None  # nothing O(stream length) kept
        assert result.arrivals > 5_000
        assert result.departures == result.arrivals
        assert result.open_bins == 0
        # expected peak live ~ rate * mean duration = 275 <<< arrivals
        assert result.peak_live_items < 0.1 * result.arrivals

    def test_flush_cadence_and_collector_counters(self):
        inst = UniformWorkload(d=1, n=100, mu=5).sample_seeded(1)
        sink = MemorySink()
        col = StatsCollector(sink=sink)
        streaming_run(make_algorithm("first_fit"), inst,
                      collector=col, flush_every=50)
        stats = col.snapshot()
        assert stats.streaming_runs == 1
        # 200 events at flush_every=50: thresholds 50/100/150 are crossed
        # while arrivals are still flowing; the 200th event falls in the
        # tail departure drain, which deliberately does not flush
        assert stats.stream_flushes == 3
        assert stats.peak_live_items > 0
        flushes = sink.by_kind("stream_flush")
        assert len(flushes) == 3
        assert all("live_items" in rec and "open_bins" in rec
                   for rec in flushes)

    def test_flush_disabled(self):
        inst = UniformWorkload(d=1, n=60, mu=5).sample_seeded(2)
        engine = StreamingEngine(
            make_algorithm("next_fit"), inst.capacity, flush_every=0,
            record_assignment=True,
        )
        assert engine.run(inst.items).flushes == 0

    def test_engine_is_single_use(self):
        inst = UniformWorkload(d=1, n=10, mu=5).sample_seeded(0)
        engine = StreamingEngine(make_algorithm("next_fit"), inst.capacity)
        engine.run(inst.items)
        with pytest.raises(AlgorithmError):
            engine.run(inst.items)

    def test_next_fit_audit_bookkeeping_suspended_on_stream(self):
        # next_fit's Theorem 4 release_log pins every released bin's
        # residents — O(stream length).  The streaming engine must run
        # with audit_mode off (empty log, empty release_times) and hand
        # the algorithm back with the flag restored, so a later classic
        # run (e.g. verify_theorem4) still gets the full trail.
        inst = UniformWorkload(d=1, n=120, mu=3).sample_seeded(9)
        algo = make_algorithm("next_fit")
        engine = StreamingEngine(algo, inst.capacity, record_assignment=True)
        streamed = engine.run(inst.items)
        assert streamed.bins_opened > 1          # releases did happen
        assert algo.release_log == []
        assert algo.release_times == {}
        assert algo.audit_mode is True           # restored after the run
        classic = run(algo, inst)
        assert len(algo.release_log) > 0         # full trail is back
        assert len(algo.release_times) > 0
        assert dict(classic.assignment) == streamed.assignment

    def test_deterministic_part_zeroes_streaming_counters(self):
        # streaming_runs / stream_flushes / peak_live_items are execution
        # history, not algorithm output — two bit-identical runs through
        # different engines must compare equal after deterministic_part()
        inst = UniformWorkload(d=1, n=80, mu=5).sample_seeded(4)
        col_stream = StatsCollector()
        streaming_run(make_algorithm("first_fit"), inst,
                      collector=col_stream, flush_every=20)
        col_classic = StatsCollector()
        run("first_fit", inst, collector=col_classic)
        s, c = col_stream.snapshot(), col_classic.snapshot()
        assert s.streaming_runs == 1 and c.streaming_runs == 0
        d = s.deterministic_part()
        assert d.streaming_runs == 0
        assert d.stream_flushes == 0
        assert d.peak_live_items == 0
        assert d == c.deterministic_part()


# ----------------------------------------------------------------------
# workload stream adapters
# ----------------------------------------------------------------------
class TestWorkloadStreams:
    def test_base_default_stream_matches_sample(self):
        gen = UniformWorkload(d=2, n=50, mu=10)
        inst = gen.sample_seeded(9)
        streamed = list(gen.stream_seeded(9)) if hasattr(gen, "stream_seeded") else []
        # UniformWorkload overrides stream(); the *default* adapter is
        # exercised through a generator without an override
        from repro.workloads.trace import CloudTraceWorkload

        trace = CloudTraceWorkload()
        t_inst = trace.sample_seeded(3)
        t_stream = list(trace.stream_seeded(3))
        assert [(i.uid, i.arrival, i.departure) for i in t_stream] == [
            (i.uid, i.arrival, i.departure) for i in t_inst.items
        ]
        assert inst.n == 50 and len(streamed) == 50

    def test_poisson_stream_sorted_and_bounded(self):
        gen = PoissonWorkload(d=2, rate=20.0, horizon=50.0)
        items = list(gen.stream_seeded(7))
        assert items, "stream came up empty at rate*horizon = 1000"
        arrivals = [i.arrival for i in items]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] <= 50.0
        assert [i.uid for i in items] == list(range(len(items)))
        # same seed -> same stream; different seed -> different stream
        again = list(gen.stream_seeded(7))
        assert [(i.uid, i.arrival) for i in again] == [
            (i.uid, i.arrival) for i in items
        ]
        other = list(gen.stream_seeded(8))
        assert [i.arrival for i in other] != arrivals

    def test_poisson_stream_limit(self):
        gen = PoissonWorkload(d=1, rate=100.0, horizon=100.0)
        items = list(gen.stream_seeded(0, limit=25))
        assert len(items) == 25

    def test_uniform_stream_sorted_marginals(self):
        gen = UniformWorkload(d=3, n=400, mu=10, T=1000, B=100)
        items = list(gen.stream_seeded(13))
        assert len(items) == 400
        arrivals = [i.arrival for i in items]
        assert arrivals == sorted(arrivals)
        assert 0.0 <= arrivals[0] and arrivals[-1] <= 1000 - 10
        for it in items:
            # durations are drawn integral; the subtraction reintroduces
            # float noise because arrivals are continuous
            dur = it.departure - it.arrival
            assert 1.0 - 1e-9 <= dur <= 10.0 + 1e-9
            assert abs(dur - round(dur)) < 1e-6
            assert it.size.shape == (3,)
            assert np.all(it.size >= 1) and np.all(it.size <= 100)
            assert np.all(it.size == np.round(it.size))

    def test_uniform_stream_limit(self):
        gen = UniformWorkload(d=1, n=100, mu=5)
        assert len(list(gen.stream_seeded(0, limit=10))) == 10

    def test_streamed_items_replay_through_engine(self):
        # a stream is a valid engine input end to end: build the same
        # items as a materialised instance and check bit-identity
        gen = PoissonWorkload(d=2, rate=10.0, horizon=40.0)
        items = list(gen.stream_seeded(21))
        inst = Instance(items, capacity=gen.capacity, name="streamed",
                        _skip_sort_check=True)
        classic = run("first_fit", inst)
        engine = StreamingEngine(
            make_algorithm("first_fit"), gen.capacity, record_assignment=True
        )
        result = engine.run(iter(items))
        assert dict(result.assignment) == dict(classic.assignment)
        assert result.cost == pytest.approx(classic.cost, abs=1e-9)


# ----------------------------------------------------------------------
# deep property sweep (fuzz job only)
# ----------------------------------------------------------------------
@pytest.mark.fuzz
@given(inst=instances(max_items=30, jitter=True), policy=policies())
@settings(max_examples=150)
def test_streaming_bit_identity_fuzz(inst, policy):
    classic = run(make_algorithm(policy, **_kwargs(policy)), inst)
    streamed = streaming_run(make_algorithm(policy, **_kwargs(policy)), inst)
    assert streamed.cost == classic.cost
    assert dict(streamed.assignment) == dict(classic.assignment)
