"""Public API surface tests: exports resolve, docstrings exist.

Guards against export rot (symbols listed in ``__all__`` that do not
exist) and undocumented public surface.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.algorithms",
    "repro.simulation",
    "repro.optimum",
    "repro.workloads",
    "repro.analysis",
    "repro.experiments",
    "repro.heterogeneous",
    "repro.orchestration",
]

MODULES = [
    "repro.core.vectors",
    "repro.core.intervals",
    "repro.core.items",
    "repro.core.instance",
    "repro.core.bins",
    "repro.core.packing",
    "repro.core.events",
    "repro.core.errors",
    "repro.algorithms.base",
    "repro.algorithms.registry",
    "repro.algorithms.predictions",
    "repro.simulation.engine",
    "repro.simulation.instrumentation",
    "repro.simulation.metrics",
    "repro.simulation.parallel",
    "repro.simulation.trace",
    "repro.simulation.billing",
    "repro.optimum.lower_bounds",
    "repro.optimum.vbp_solver",
    "repro.optimum.opt_cost",
    "repro.optimum.offline_assignment",
    "repro.workloads.uniform",
    "repro.workloads.adversarial",
    "repro.workloads.composite",
    "repro.workloads.describe",
    "repro.analysis.theory",
    "repro.analysis.sweep",
    "repro.analysis.proofs",
    "repro.analysis.competitive",
    "repro.analysis.augmentation",
    "repro.experiments.figure4",
    "repro.experiments.table1",
    "repro.experiments.driver",
    "repro.orchestration.checkpoint",
    "repro.orchestration.faults",
    "repro.orchestration.sweep",
    "repro.heterogeneous.types",
    "repro.heterogeneous.engine",
    "repro.cli",
]


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_module_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        assert hasattr(mod, symbol), f"{name}.__all__ lists missing {symbol!r}"


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_module_docstrings(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and mod.__doc__.strip(), f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", MODULES)
def test_public_callables_documented(name):
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        obj = getattr(mod, symbol)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if obj.__module__ != name:
                continue  # re-export; documented at home
            assert obj.__doc__ and obj.__doc__.strip(), (
                f"{name}.{symbol} lacks a docstring"
            )


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_top_level_convenience_symbols():
    import repro

    for sym in ("Instance", "Item", "simulate", "run", "MoveToFront",
                "UniformWorkload", "height_lower_bound", "make_algorithm"):
        assert hasattr(repro, sym)
