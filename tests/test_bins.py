"""Unit tests for repro.core.bins."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bins import Bin
from repro.core.errors import CapacityExceededError
from repro.core.intervals import Interval
from repro.core.items import Item


def make_bin(d=1, index=0, opened_at=0.0, capacity=None):
    cap = np.ones(d) if capacity is None else np.asarray(capacity, dtype=float)
    return Bin(cap, index=index, opened_at=opened_at)


class TestLifecycle:
    def test_new_bin_is_open_and_empty(self):
        b = make_bin()
        assert b.is_open and b.is_empty
        assert b.num_active == 0

    def test_pack_updates_load(self):
        b = make_bin(d=2)
        b.pack(Item(0, 1, np.array([0.3, 0.4]), 0))
        assert np.allclose(b.load, [0.3, 0.4])
        assert b.num_active == 1

    def test_pack_appends_history(self):
        b = make_bin()
        it = Item(0, 1, np.array([0.3]), 0)
        b.pack(it)
        assert b.history == [it]

    def test_remove_recomputes_load(self):
        b = make_bin()
        a = Item(0, 2, np.array([0.3]), 0)
        c = Item(0, 1, np.array([0.4]), 1)
        b.pack(a)
        b.pack(c)
        closed = b.remove(c, now=1.0)
        assert not closed
        assert np.allclose(b.load, [0.3])

    def test_last_removal_closes(self):
        b = make_bin()
        it = Item(0, 1, np.array([0.3]), 0)
        b.pack(it)
        assert b.remove(it, now=1.0)
        assert not b.is_open
        assert b.closed_at == 1.0

    def test_remove_unknown_item_raises(self):
        b = make_bin()
        with pytest.raises(KeyError):
            b.remove(Item(0, 1, np.array([0.3]), 99), now=1.0)

    def test_double_pack_same_uid_rejected(self):
        b = make_bin()
        it = Item(0, 1, np.array([0.1]), 0)
        b.pack(it)
        with pytest.raises(CapacityExceededError):
            b.pack(it)


class TestCapacity:
    def test_overfull_pack_rejected(self):
        b = make_bin()
        b.pack(Item(0, 1, np.array([0.7]), 0))
        with pytest.raises(CapacityExceededError):
            b.pack(Item(0, 1, np.array([0.4]), 1))

    def test_exact_fill_allowed(self):
        b = make_bin()
        b.pack(Item(0, 1, np.array([0.7]), 0))
        b.pack(Item(0, 1, np.array([0.3]), 1))
        assert np.allclose(b.load, [1.0])

    def test_per_dimension_blocking(self):
        b = make_bin(d=2)
        b.pack(Item(0, 1, np.array([0.9, 0.1]), 0))
        assert not b.can_fit(Item(0, 1, np.array([0.2, 0.1]), 1))
        assert b.can_fit(Item(0, 1, np.array([0.1, 0.8]), 2))

    def test_nonunit_capacity(self):
        b = make_bin(d=1, capacity=[100.0])
        b.pack(Item(0, 1, np.array([60.0]), 0))
        assert b.can_fit(Item(0, 1, np.array([40.0]), 1))
        assert not b.can_fit(Item(0, 1, np.array([41.0]), 2))

    def test_float_accumulation_does_not_drift(self):
        # pack/remove many times; load must return to exactly zero-ish
        b = make_bin(capacity=[1.0])
        for i in range(50):
            it = Item(0, 1, np.array([0.1]), i)
            b.pack(it)
            b.remove(it, now=0.5)
            b.closed_at = None  # reopen for the test's purposes
        assert b.load[0] == 0.0


class TestUsageAccounting:
    def test_usage_period_closed(self):
        b = make_bin(opened_at=2.0)
        it = Item(2, 5, np.array([0.3]), 0)
        b.pack(it)
        b.remove(it, now=5.0)
        assert b.usage_period == Interval(2.0, 5.0)
        assert b.usage_time == 3.0

    def test_usage_period_open_uses_latest_departure(self):
        b = make_bin(opened_at=1.0)
        b.pack(Item(1, 4, np.array([0.3]), 0))
        b.pack(Item(1, 9, np.array([0.3]), 1))
        assert b.usage_period == Interval(1.0, 9.0)

    def test_active_queries(self):
        b = make_bin()
        a = Item(0, 2, np.array([0.1]), 5)
        b.pack(a)
        assert b.active_uids() == {5}
        assert b.active_items() == [a]
