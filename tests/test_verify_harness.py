"""The verify harness end-to-end: profiles, mutation smoke-test, CLI.

Tier-1 runs the harness on a short corpus prefix; the full ``quick``
profile (220 instances — the CI gate's exact configuration) and a
deep-profile slice run under the ``fuzz`` marker.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.errors import ConfigurationError
from repro.observability.stats import StatsCollector
from repro.verify.generators import CORPUS_RECIPES, corpus_list
from repro.verify.harness import PROFILES, run_verify
from repro.verify.mutation import broken_fit, mutation_smoke_test


def test_profiles_registered():
    assert set(PROFILES) == {"quick", "deep"}
    # the CI gate's acceptance floor: >= 200 instances in the quick profile
    assert PROFILES["quick"].instances >= 200
    assert PROFILES["deep"].instances > PROFILES["quick"].instances
    assert len(PROFILES["quick"].policies) == 7


def test_run_verify_short_prefix_is_clean():
    report = run_verify("quick", instances=len(CORPUS_RECIPES))
    assert report.ok
    assert report.instances_checked == len(CORPUS_RECIPES)
    # 7 default policies plus one cycled measure-variant (l1/lp) run
    assert report.runs == len(CORPUS_RECIPES) * 8
    assert report.violations == []
    assert report.mutation is not None and report.mutation.all_caught
    assert "all invariants held" in report.render()
    assert "mutation smoke-test" in report.render()
    # the adversary must-exceed scenarios run in every profile
    assert len(report.adversary_outcomes) == 8
    assert all(o.passed for o in report.adversary_outcomes)
    assert "adversary bounds: 8/8" in report.render()
    assert "null-adversary CAUGHT" in report.render()
    assert "budget-ignoring CAUGHT" in report.render()


def test_run_verify_records_work_counters():
    """The harness's engine runs flow through one shared StatsCollector."""
    collector = StatsCollector()
    report = run_verify("quick", instances=4, collector=collector)
    assert report.ok
    n_items = sum(e.instance.n for e in corpus_list(4, seed=PROFILES["quick"].seed))
    # 7 policies plus the cycled measure-variant run x every event; the
    # instrumented-differential oracle runs extra engine passes through
    # its own collectors, not this one
    assert report.stats.events == 8 * 2 * n_items
    assert report.stats.fit_checks >= report.stats.candidate_scans
    assert report.stats.dispatch_time_s > 0
    assert collector.snapshot().events == report.stats.events


def test_run_verify_unknown_profile():
    with pytest.raises(ConfigurationError):
        run_verify("exhaustive")


def test_mutation_smoke_test_catches_all_mutants():
    report = mutation_smoke_test(seed=0)
    assert report.capacity_caught
    assert report.any_fit_caught
    assert report.fastpath_caught
    assert report.null_adversary_caught
    assert report.repacking_caught
    assert report.all_caught


def test_budget_ignoring_mutant_caught_by_budget_auditor():
    """The ledger-bypassing repacker is flagged by the move-log replay.

    Both halves of the auditor must fire: the per-event budget replay
    (two moves in one window against a budget of one) and the
    ledger-vs-log agreement check (the ledger recorded nothing).
    """
    report = mutation_smoke_test(seed=0)
    assert report.repacking_violations
    assert all(v.check == "repacking-audit" for v in report.repacking_violations)
    messages = " ".join(v.message for v in report.repacking_violations)
    assert "exceeding the per-event budget" in messages
    assert "enforcement was bypassed" in messages


def test_stale_residual_mutant_actually_diverges():
    """The broken fast engine packs differently from the classic one, is
    caught by the twin-engine oracle, and the violations name it."""
    report = mutation_smoke_test(seed=0)
    assert report.fastpath_violations
    assert all(v.check == "fastpath" for v in report.fastpath_violations)
    # the healthy fast engine on the same workload is clean, so the
    # divergence is the injected bug, not the workload
    from repro.verify.mutation import StaleResidualFastEngine
    from repro.verify.oracles import compare_with_fastpath
    from repro.workloads.uniform import UniformWorkload

    inst = UniformWorkload(d=2, n=60, mu=6, T=20, B=6, name="mutation").sample_seeded(2)
    from repro.simulation.runner import run as _run

    classic = _run("first_fit", inst)
    assert compare_with_fastpath(classic, "first_fit") == []
    stale = StaleResidualFastEngine(inst, "first_fit").run()
    assert compare_with_fastpath(classic, "first_fit", fast_packing=stale) != []


def test_render_reports_stale_residual_mutant():
    report = run_verify("quick", instances=2)
    assert "stale-residual CAUGHT" in report.render()


def test_broken_fit_is_actually_broken():
    """The injected predicate ignores every dimension but the first."""
    load = np.array([0.2, 0.9])
    size = np.array([0.2, 0.9])
    cap = np.array([1.0, 1.0])
    assert broken_fit(load, size, cap)  # accepts an overflow in dim 1
    assert not broken_fit(np.array([0.9, 0.0]), size, cap)  # dim 0 still checked


def test_cli_verify_profile_quick():
    assert main(["verify", "--profile", "quick", "--instances", "6"]) == 0


def test_cli_verify_theorem_path_unchanged():
    assert main(["verify", "--theorem", "2", "--n", "60", "--mu", "5"]) == 0
    assert main(["verify", "--theorem", "4", "--n", "60", "--mu", "5", "--seed", "3"]) == 0


@pytest.mark.fuzz
def test_full_quick_profile():
    """The exact CI gate: 220 instances, all policies, zero violations."""
    report = run_verify("quick", progress=print)
    assert report.instances_checked >= 200
    assert report.ok, report.render()


@pytest.mark.fuzz
def test_deep_profile_slice():
    """A deep-profile slice: stride-1 instrumentation + exact-OPT checks."""
    report = run_verify("deep", instances=40)
    assert report.ok, report.render()
