"""Batched sweep execution: BatchRunner, InstanceSpec, engine="batch".

The acceptance tests of :mod:`repro.simulation.batch`:

* **three-way differential** — for every recipe of the verification
  corpus and every Section 7 policy, the batched pass (shared replay
  context, re-armed engine, shared lower bound) must produce the exact
  assignment, bin count, and Eq. 1 cost of both the per-unit fast path
  and the classic engine;
* **spec fidelity** — ``spec_batch`` materialises to the same
  instances, bit for bit, as ``generate_batch``; specs round-trip
  through their payload dict; irreproducible seeds are rejected;
* **dispatch equality** — ``parallel_sweep(engine="batch")`` (serial
  and pooled) and ``run_many(batch=True)`` agree with per-unit
  dispatch;
* **resume-mid-batch** — a ``resumable_sweep(engine="batch")`` cut off
  mid-run by ``max_units`` and resumed from its checkpoint reloads
  exactly what was completed and finishes bit-identically;
* **amortisation pins** — the Lemma 1 lower bound is computed exactly
  once per instance on every consuming path (BatchRunner, the serial
  sweep cell, the bench scenario runner), guarding the hoist against
  regression.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from repro.core.errors import ConfigurationError
from repro.core.packing import Packing
from repro.simulation.batch import (
    BatchRunner,
    InstanceSpec,
    batch_run_many,
    clear_instance_cache,
    instance_cache_info,
    materialize,
    spec_batch,
)
from repro.simulation.fastpath import FastEngine, available_backends
from repro.simulation.parallel import derive_unit_seeds, parallel_sweep
from repro.simulation.runner import run, run_many
from repro.verify.generators import CORPUS_RECIPES, corpus_list
from repro.workloads.base import generate_batch
from repro.workloads.uniform import UniformWorkload

_SEED = 20230613

CORPUS = corpus_list(len(CORPUS_RECIPES), seed=_SEED)


def _ids(entries):
    return [e.recipe for e in entries]


def _keys(results):
    return {
        name: [(r.instance_index, r.cost, r.num_bins, r.lower_bound)
               for r in results[name]]
        for name in results
    }


# ----------------------------------------------------------------------
# three-way differential over the corpus
# ----------------------------------------------------------------------
@pytest.mark.parametrize("entry", CORPUS, ids=_ids(CORPUS))
def test_three_way_batch_vs_fastpath_vs_classic(entry):
    """Batched pass == per-unit fast path == classic, per corpus recipe."""
    inst = entry.instance
    entries = [
        (policy, {"seed": 0} if policy == "random_fit" else None)
        for policy in PAPER_ALGORITHMS
    ]
    runner = BatchRunner(inst)
    units, assignments = runner.run_units(entries, keep_assignments=True)

    for (policy, _), unit, assignment in zip(entries, units, assignments):
        kwargs = {"seed": 0} if policy == "random_fit" else {}
        classic = run(make_algorithm(policy, **kwargs), inst)
        fast = FastEngine(inst, policy, seed=0).run()

        assert assignment == dict(classic.assignment), (
            f"batched vs classic assignment diverged on {entry.recipe}/{policy}"
        )
        assert assignment == dict(fast.assignment), (
            f"batched vs fastpath assignment diverged on {entry.recipe}/{policy}"
        )
        # bit identity, not approx: the batched cost replays the exact
        # Packing.from_assignment float operations
        assert unit.cost == classic.cost == fast.cost
        assert unit.num_bins == classic.num_bins == fast.num_bins


@pytest.mark.parametrize("backend", available_backends())
def test_batch_runner_backend_override(backend):
    """An explicit backend produces the same aggregates as the heuristic."""
    inst = CORPUS[0].instance
    entries = [(p, None) for p in ("first_fit", "best_fit", "move_to_front")]
    default = BatchRunner(inst).run_units(entries)
    forced = BatchRunner(inst, backend=backend).run_units(entries)
    assert [(u.cost, u.num_bins) for u in default] == \
        [(u.cost, u.num_bins) for u in forced]


def test_batch_runner_classic_fallback_shares_lower_bound():
    """Non-fast-eligible entries run classically but share the LB."""
    inst = CORPUS[2].instance
    units = BatchRunner(inst).run_units(
        [("first_fit", None), ("best_fit", {"measure": "l1"})]
    )
    classic = run(make_algorithm("best_fit", measure="l1"), inst)
    assert units[1].cost == classic.cost
    assert units[1].num_bins == classic.num_bins
    assert units[0].lower_bound == units[1].lower_bound


def test_batch_runner_trials_match_per_seed_runs():
    """run_trials == a fresh per-unit run per seed, bit for bit."""
    inst = CORPUS[1].instance
    seeds = derive_unit_seeds(99, 6)
    trials = BatchRunner(inst).run_trials(seeds)
    assert len(trials) == len(seeds)
    for seed, unit in zip(seeds, trials):
        packing = FastEngine(inst, "random_fit", seed=seed).run()
        assert unit.cost == packing.cost
        assert unit.num_bins == packing.num_bins


def test_batch_runner_run_packing_matches_run():
    inst = CORPUS[3].instance
    runner = BatchRunner(inst)
    for policy in ("move_to_front", "next_fit"):
        packing = runner.run_packing(policy)
        assert isinstance(packing, Packing)
        expected = run(policy, inst)
        assert dict(packing.assignment) == dict(expected.assignment)
        assert packing.cost == expected.cost


# ----------------------------------------------------------------------
# specs: fidelity, round-trip, cache
# ----------------------------------------------------------------------
def test_spec_batch_materializes_generate_batch_twins():
    gen = UniformWorkload(d=3, n=50, mu=7, T=200, B=40)
    for seed in (0, 123, 77):
        # fresh SeedSequence per side: spawn() advances n_children_spawned,
        # so a shared object would hand the two calls different children
        specs = spec_batch(gen, 4, seed=np.random.SeedSequence(seed))
        expected = generate_batch(gen, 4, seed=np.random.SeedSequence(seed))
        assert [s.materialize().to_dict() for s in specs] == \
            [inst.to_dict() for inst in expected]


def test_spec_round_trips_through_payload_dict():
    gen = UniformWorkload(d=2, n=30, mu=5)
    spec = spec_batch(gen, 2, seed=5)[1]
    clone = InstanceSpec.from_dict(spec.to_dict())
    assert clone == spec
    assert clone.materialize().to_dict() == spec.materialize().to_dict()
    # specs are hashable (they key the worker cache) and picklable
    assert hash(clone) == hash(spec)
    assert pickle.loads(pickle.dumps(spec)) == spec


def test_spec_rejects_irreproducible_sources():
    gen = UniformWorkload(d=1, n=10, mu=2)
    with pytest.raises(ConfigurationError):
        # a live Generator's state cannot be shipped to workers
        spec_batch(gen, 2, seed=np.random.default_rng(0))
    from repro.workloads.poisson import PoissonWorkload

    with pytest.raises(ConfigurationError):
        # sampler objects do not round-trip through describe()
        InstanceSpec.from_generator(PoissonWorkload(), 0)


def test_spec_unknown_generator_rejected():
    spec = InstanceSpec(generator="no-such-gen", params=(), entropy=0)
    with pytest.raises(ConfigurationError):
        materialize(spec)


def test_instance_cache_hits_on_repeated_materialize():
    clear_instance_cache()
    spec = spec_batch(UniformWorkload(d=2, n=20, mu=3), 1, seed=3)[0]
    first = spec.materialize()
    again = spec.materialize()
    assert again is first  # the LRU returns the cached object
    info = instance_cache_info()
    assert info.hits >= 1 and info.misses >= 1
    clear_instance_cache()
    assert instance_cache_info().currsize == 0


# ----------------------------------------------------------------------
# dispatch equality: parallel_sweep / run_many
# ----------------------------------------------------------------------
def _sweep_fixture():
    gen = UniformWorkload(d=2, n=40, mu=5)
    specs = spec_batch(gen, 4, seed=17)
    instances = [s.materialize() for s in specs]
    algos = ["first_fit", "move_to_front", "best_fit", "random_fit"]
    kwargs = {"random_fit": {"seed": 13}}
    return specs, instances, algos, kwargs


def test_parallel_sweep_batch_serial_matches_per_unit():
    specs, instances, algos, kwargs = _sweep_fixture()
    per_unit = parallel_sweep(
        algos, instances, processes=0, algorithm_kwargs=kwargs, engine="fast"
    )
    batched = parallel_sweep(
        algos, specs, processes=0, algorithm_kwargs=kwargs, engine="batch"
    )
    assert _keys(per_unit) == _keys(batched)
    # batch dispatch accepts materialised instances too
    batched_inst = parallel_sweep(
        algos, instances, processes=0, algorithm_kwargs=kwargs, engine="batch"
    )
    assert _keys(per_unit) == _keys(batched_inst)


def test_parallel_sweep_batch_pooled_matches_serial():
    specs, instances, algos, kwargs = _sweep_fixture()
    serial = parallel_sweep(
        algos, specs, processes=0, algorithm_kwargs=kwargs, engine="batch"
    )
    pooled = parallel_sweep(
        algos, specs, processes=2, algorithm_kwargs=kwargs, engine="batch"
    )
    assert _keys(serial) == _keys(pooled)


def test_parallel_sweep_batch_collect_stats():
    specs, _, algos, kwargs = _sweep_fixture()
    results = parallel_sweep(
        algos, specs[:2], processes=0, algorithm_kwargs=kwargs,
        engine="batch", collect_stats=True,
    )
    for units in results.values():
        for unit in units:
            assert unit.stats is not None
            assert unit.stats.runs == 1


def test_run_many_batch_matches_per_instance_runs():
    specs, instances, _, _ = _sweep_fixture()
    for algo in ("move_to_front", "random_fit"):
        expected = run_many(algo, instances, engine="fast")
        for got in (
            run_many(algo, instances, batch=True),
            run_many(algo, instances, engine="batch"),
            batch_run_many(algo, specs),
        ):
            assert [dict(p.assignment) for p in got] == \
                [dict(p.assignment) for p in expected]
            assert [p.cost for p in got] == [p.cost for p in expected]


def test_run_engine_batch_matches_classic():
    inst = _sweep_fixture()[1][0]
    batch = run("first_fit", inst, engine="batch", validate=True)
    classic = run("first_fit", inst)
    assert dict(batch.assignment) == dict(classic.assignment)
    assert batch.cost == classic.cost


# ----------------------------------------------------------------------
# resume-mid-batch
# ----------------------------------------------------------------------
def test_resumable_sweep_batch_kill_resume_bit_identity(tmp_path):
    """Cut a batched sweep mid-run; the resume completes bit-identically."""
    from repro.observability.stats import StatsCollector
    from repro.orchestration import resumable_sweep

    specs, _, algos, kwargs = _sweep_fixture()
    plain = resumable_sweep(
        algos, specs, processes=0, algorithm_kwargs=kwargs, engine="batch"
    )
    total = sum(len(v) for v in plain.values())
    cut = total // 2

    ckpt = str(tmp_path / "ckpt")
    partial = resumable_sweep(
        algos, specs, processes=0, algorithm_kwargs=kwargs, engine="batch",
        checkpoint_dir=ckpt, flush_every=1, max_units=cut,
    )
    done = sum(len(v) for v in partial.values())
    # batch payloads complete atomically, so the cut lands on a payload
    # boundary at or past max_units — but strictly mid-sweep
    assert cut <= done < total

    col = StatsCollector()
    resumed = resumable_sweep(
        algos, specs, processes=0, algorithm_kwargs=kwargs, engine="batch",
        checkpoint_dir=ckpt, resume=True, collector=col,
    )
    assert col.snapshot().units_resumed == done
    assert _keys(resumed) == _keys(plain)


def test_resumable_sweep_batch_resume_trims_partial_payloads(tmp_path):
    """A payload with only *some* units checkpointed re-runs only the rest."""
    from repro.orchestration import CheckpointStore, resumable_sweep, sweep_fingerprint
    from repro.simulation.parallel import UnitResult

    specs, _, algos, kwargs = _sweep_fixture()
    plain = resumable_sweep(
        algos, specs, processes=0, algorithm_kwargs=kwargs, engine="batch"
    )

    # fabricate a checkpoint holding one unit out of instance 0's payload
    ckpt = str(tmp_path / "partial")
    fp = sweep_fingerprint(algos, specs, kwargs, "batch")
    store = CheckpointStore(ckpt, fingerprint=fp)
    seeded = plain[algos[0]][0]
    store.append(
        UnitResult(
            algorithm=seeded.algorithm, instance_index=0, cost=seeded.cost,
            num_bins=seeded.num_bins, lower_bound=seeded.lower_bound,
        )
    )
    store.flush()

    resumed = resumable_sweep(
        algos, specs, processes=0, algorithm_kwargs=kwargs, engine="batch",
        checkpoint_dir=ckpt, resume=True,
    )
    assert _keys(resumed) == _keys(plain)


# ----------------------------------------------------------------------
# amortisation pins: Lemma 1 LB exactly once per instance
# ----------------------------------------------------------------------
def _counting(monkeypatch, module, name="height_lower_bound"):
    from repro.optimum.lower_bounds import height_lower_bound as real

    calls = []

    def counted(instance):
        calls.append(instance)
        return real(instance)

    monkeypatch.setattr(module, name, counted)
    return calls


def test_batch_runner_computes_lower_bound_once(monkeypatch):
    import repro.simulation.batch as batch_mod

    calls = _counting(monkeypatch, batch_mod)
    runner = BatchRunner(CORPUS[0].instance)
    runner.run_units([(p, None) for p in PAPER_ALGORITHMS if p != "random_fit"])
    runner.run_trials(range(4))
    assert len(calls) == 1


def test_sweep_cell_computes_lower_bound_once_per_instance(monkeypatch):
    import repro.analysis.sweep as sweep_mod

    calls = _counting(monkeypatch, sweep_mod)
    instances = [e.instance for e in CORPUS[:3]]
    sweep_mod.sweep_cell(["first_fit", "best_fit", "move_to_front"], instances)
    assert len(calls) == len(instances)


def test_bench_scenario_computes_lower_bound_once(monkeypatch):
    import repro.observability.bench as bench_mod

    calls = _counting(monkeypatch, bench_mod)
    scenario = bench_mod.SMOKE_SCENARIOS[0]
    bench_mod.run_scenario(scenario, ["first_fit", "move_to_front"], repeats=1)
    assert len(calls) == 1
