"""Tests for the learning-augmented (predicted-duration) policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.clairvoyant import AlignmentBestFit
from repro.algorithms.predictions import (
    DurationPredictor,
    PredictedAlignmentFit,
    PredictedDurationClassifiedFirstFit,
)
from repro.core.errors import ConfigurationError
from repro.simulation.runner import run
from repro.workloads.distributions import DirichletSize, ParetoDuration
from repro.workloads.poisson import PoissonWorkload
from repro.workloads.uniform import UniformWorkload


@pytest.fixture
def heavy_instance():
    gen = PoissonWorkload(
        d=2, rate=20.0, horizon=40,
        durations=ParetoDuration(alpha=1.2, floor=1, cap=300),
        sizes=DirichletSize(min_mag=0.1, max_mag=0.8),
    )
    return gen.sample_seeded(0)


class TestDurationPredictor:
    def test_zero_sigma_is_exact(self, uniform_small):
        oracle = DurationPredictor(sigma=0.0)
        for it in uniform_small.items:
            assert oracle.predicted_duration(it) == pytest.approx(it.duration)

    def test_predictions_cached_and_stable(self, uniform_small):
        oracle = DurationPredictor(sigma=1.0, seed=3)
        it = uniform_small[0]
        assert oracle.predicted_duration(it) == oracle.predicted_duration(it)

    def test_same_seed_same_predictions(self, uniform_small):
        a = DurationPredictor(sigma=1.0, seed=3)
        b = DurationPredictor(sigma=1.0, seed=3)
        it = uniform_small[0]
        assert a.predicted_duration(it) == b.predicted_duration(it)

    def test_different_seed_changes_predictions(self, uniform_small):
        a = DurationPredictor(sigma=1.0, seed=3)
        b = DurationPredictor(sigma=1.0, seed=4)
        preds_a = [a.predicted_duration(it) for it in uniform_small.items]
        preds_b = [b.predicted_duration(it) for it in uniform_small.items]
        assert preds_a != preds_b

    def test_noise_clipped(self, uniform_small):
        oracle = DurationPredictor(sigma=5.0, seed=0, min_factor=0.5, max_factor=2.0)
        for it in uniform_small.items:
            ratio = oracle.predicted_duration(it) / it.duration
            assert 0.5 - 1e-9 <= ratio <= 2.0 + 1e-9

    def test_reset_clears_cache(self, uniform_small):
        oracle = DurationPredictor(sigma=1.0)
        it = uniform_small[0]
        oracle.predicted_duration(it)
        oracle.reset()
        assert oracle._cache == {}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DurationPredictor(sigma=-1.0)
        with pytest.raises(ConfigurationError):
            DurationPredictor(min_factor=2.0)


class TestPredictedAlignmentFit:
    def test_valid_packing(self, uniform_small):
        run(PredictedAlignmentFit(), uniform_small, validate=True)

    def test_exact_predictions_match_clairvoyant(self, uniform_small):
        exact = PredictedAlignmentFit(DurationPredictor(sigma=0.0))
        clair = AlignmentBestFit()
        p1 = run(exact, uniform_small)
        p2 = run(clair, uniform_small)
        assert p1.assignment == p2.assignment

    def test_noisy_predictions_stay_feasible(self, heavy_instance):
        noisy = PredictedAlignmentFit(DurationPredictor(sigma=3.0, seed=1))
        run(noisy, heavy_instance, validate=True)

    def test_cost_degrades_gracefully_with_noise(self, heavy_instance):
        """More noise should not help (allowing slack for randomness);
        infinite noise should still be within the worst Any Fit range."""
        costs = {}
        for sigma in (0.0, 4.0):
            algo = PredictedAlignmentFit(DurationPredictor(sigma=sigma, seed=2))
            costs[sigma] = run(algo, heavy_instance).cost
        worst_anyfit = run("worst_fit", heavy_instance).cost
        assert costs[4.0] <= worst_anyfit * 1.2
        assert costs[0.0] <= costs[4.0] * 1.05  # exact is ~at least as good

    def test_is_any_fit(self, uniform_small):
        from tests.test_anyfit_property import assert_any_fit_property

        packing = run(PredictedAlignmentFit(), uniform_small)
        assert_any_fit_property(packing)


class TestPredictedClassifiedFF:
    def test_valid_packing(self, uniform_small):
        run(PredictedDurationClassifiedFirstFit(), uniform_small, validate=True)

    def test_exact_predictions_match_clairvoyant(self):
        from repro.algorithms.clairvoyant import DurationClassifiedFirstFit

        inst = UniformWorkload(d=2, n=80, mu=16, T=60, B=10).sample_seeded(4)
        exact = PredictedDurationClassifiedFirstFit(DurationPredictor(sigma=0.0))
        clair = DurationClassifiedFirstFit()
        assert run(exact, inst).assignment == run(clair, inst).assignment

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PredictedDurationClassifiedFirstFit(base=1.0)

    def test_noisy_runs_feasible(self, heavy_instance):
        algo = PredictedDurationClassifiedFirstFit(
            DurationPredictor(sigma=2.0, seed=5), base=4.0
        )
        run(algo, heavy_instance, validate=True)
