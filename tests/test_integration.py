"""Integration tests: end-to-end reproduction of the paper's qualitative
claims at reduced scale.

These are the "shape" assertions of DESIGN.md §3: who wins, who degrades
with μ, where variance concentrates.  Scales are chosen so each test runs
in a few seconds while the rankings are already stable.  Two Figure 4
claims do not reproduce verbatim in this regime and are asserted in the
form that does hold (see EXPERIMENTS.md, "Deviations"): Worst Fit is the
worst *full-list* policy (Next Fit sits below it in our runs), and at the
largest μ Best Fit ties Move To Front within noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.registry import PAPER_ALGORITHMS
from repro.analysis.sweep import sweep_cell
from repro.workloads.base import generate_batch
from repro.workloads.trace import CloudTraceWorkload
from repro.workloads.uniform import UniformWorkload


def run_cell(d: int, mu: int, n: int = 1000, m: int = 8, seed: int = 0):
    gen = UniformWorkload(d=d, n=n, mu=mu, T=1000, B=100)
    instances = generate_batch(gen, m, seed=seed)
    return sweep_cell(PAPER_ALGORITHMS, instances, params={"d": d, "mu": mu})


@pytest.fixture(scope="module")
def cell_d2_mu10():
    return run_cell(d=2, mu=10)


@pytest.fixture(scope="module")
def cell_d2_mu100():
    return run_cell(d=2, mu=100)


@pytest.fixture(scope="module")
def trace_cell():
    rng = np.random.default_rng(777)
    gen = CloudTraceWorkload(days=2, base_rate=5.0)
    instances = [gen.sample(rng) for _ in range(4)]
    return sweep_cell(PAPER_ALGORITHMS, instances)


class TestSection7Claims:
    def test_move_to_front_leads_the_pack(self, cell_d2_mu10):
        """'Move To Front has the best average-case performance': MF is
        within a hair of the best mean and strictly beats FF, NF, WF and
        RF."""
        best = cell_d2_mu10.stats[cell_d2_mu10.ranking()[0]].mean
        mf = cell_d2_mu10.mean("move_to_front")
        assert mf <= best * 1.003
        for rival in ("first_fit", "next_fit", "worst_fit", "random_fit"):
            assert mf < cell_d2_mu10.mean(rival)

    def test_first_fit_and_best_fit_close(self, cell_d2_mu10):
        """'First Fit and Best Fit ... have nearly identical performance.'"""
        ff = cell_d2_mu10.mean("first_fit")
        bf = cell_d2_mu10.mean("best_fit")
        assert abs(ff - bf) / ff < 0.05

    def test_next_fit_worst_at_large_mu(self, cell_d2_mu100):
        """Next Fit's poor alignment dominates at long durations."""
        assert cell_d2_mu100.ranking()[-1] == "next_fit"

    def test_next_fit_degrades_with_mu(self, cell_d2_mu10, cell_d2_mu100):
        """'The performance of Next Fit degrad[es] with higher values of
        mu' - relative to Move To Front, NF gets worse as mu grows."""
        gap10 = cell_d2_mu10.mean("next_fit") / cell_d2_mu10.mean("move_to_front")
        gap100 = cell_d2_mu100.mean("next_fit") / cell_d2_mu100.mean("move_to_front")
        assert gap100 > gap10

    def test_next_fit_highest_variance_at_large_mu(self, cell_d2_mu100):
        """MF/FF/BF are the stable policies; NF's std dominates theirs."""
        nf_std = cell_d2_mu100.stats["next_fit"].std
        for stable in ("move_to_front", "first_fit", "best_fit"):
            assert cell_d2_mu100.stats[stable].std < nf_std

    def test_all_means_within_theory_upper_bounds(self, cell_d2_mu10):
        checks = cell_d2_mu10.within_theory(mu=10, d=2)
        assert checks and all(checks.values())

    def test_ratios_grow_with_dimension(self):
        """Higher d makes packing harder: mean ratios increase from d=1
        to d=5 for every algorithm (at fixed mu)."""
        low = run_cell(d=1, mu=10, n=400, m=6)
        high = run_cell(d=5, mu=10, n=400, m=6)
        for algo in PAPER_ALGORITHMS:
            assert high.mean(algo) >= low.mean(algo) - 0.05


class TestCloudTraceClaims:
    """On the lighter-load, heavy-tailed synthetic VM trace the paper's
    Worst Fit observation reproduces cleanly."""

    def test_worst_fit_worst_full_list_policy(self, trace_cell):
        """'As expected, Worst Fit has the worst performance' - among the
        policies whose list holds every open bin.  (Next Fit sits below
        even WF in our runs; see EXPERIMENTS.md.)"""
        full_list = [a for a in PAPER_ALGORITHMS if a != "next_fit"]
        wf = trace_cell.mean("worst_fit")
        for algo in full_list:
            assert trace_cell.mean(algo) <= wf + 1e-9

    def test_next_fit_worst_overall(self, trace_cell):
        assert trace_cell.ranking()[-1] == "next_fit"

    def test_mf_beats_the_spreaders(self, trace_cell):
        mf = trace_cell.mean("move_to_front")
        assert mf < trace_cell.mean("worst_fit")
        assert mf < trace_cell.mean("next_fit")
        assert mf < trace_cell.mean("random_fit")

    def test_packing_centric_policies_lead(self, trace_cell):
        """FF and BF (tight packers) top the trace ranking."""
        top_two = set(trace_cell.ranking()[:2])
        assert top_two <= {"best_fit", "first_fit", "move_to_front", "last_fit"}


class TestCrossWorkloadSanity:
    def test_mf_competitive_on_correlated(self, rng):
        from repro.workloads.correlated import CorrelatedWorkload

        gen = CorrelatedWorkload(d=3, n=300, rho=0.8, mu=20, T=300,
                                 min_size=0.05, max_size=0.7)
        instances = [gen.sample(rng) for _ in range(4)]
        cell = sweep_cell(PAPER_ALGORITHMS, instances)
        best = cell.stats[cell.ranking()[0]].mean
        assert cell.mean("move_to_front") <= 1.1 * best
