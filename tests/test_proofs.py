"""Tests for the proof-decomposition verification (Theorems 2 and 4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.proofs import verify_theorem2, verify_theorem4
from repro.core.instance import Instance
from repro.core.items import Item
from repro.workloads.adversarial import theorem5_instance, theorem8_instance
from repro.workloads.uniform import UniformWorkload
from tests.test_properties import instances


class TestTheorem2Verification:
    @pytest.mark.parametrize("seed", range(5))
    def test_holds_on_uniform_instances(self, seed):
        inst = UniformWorkload(d=2, n=80, mu=8, T=50, B=10).sample_seeded(seed)
        report = verify_theorem2(inst)
        assert report.all_hold, report.failed()

    def test_holds_on_adversarial_thm8(self):
        adv = theorem8_instance(n=6, mu=5.0)
        report = verify_theorem2(adv.instance)
        assert report.all_hold, report.failed()
        # the construction displaces the leader at every odd item after
        # the first pair
        assert report.displacement_count >= 5

    def test_holds_on_adversarial_thm5(self):
        adv = theorem5_instance(d=2, k=4, mu=3.0)
        report = verify_theorem2(adv.instance)
        assert report.all_hold, report.failed()

    def test_holds_in_five_dimensions(self):
        inst = UniformWorkload(d=5, n=60, mu=10, T=40, B=10).sample_seeded(3)
        report = verify_theorem2(inst)
        assert report.all_hold, report.failed()

    def test_no_displacements_on_trivial_instance(self):
        inst = Instance([Item(0, 2, np.array([0.3]), 0), Item(0, 2, np.array([0.3]), 1)])
        report = verify_theorem2(inst)
        assert report.displacement_count == 0
        assert report.all_hold

    def test_report_fields(self):
        inst = UniformWorkload(d=1, n=30, mu=4, T=20, B=5).sample_seeded(1)
        report = verify_theorem2(inst)
        assert report.mu == inst.mu and report.d == 1
        assert report.span == pytest.approx(inst.span)
        assert report.cost > 0

    @given(inst=instances(max_items=20))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_holds_on_random_instances(self, inst):
        report = verify_theorem2(inst)
        assert report.all_hold, report.failed()


class TestTheorem4Verification:
    @pytest.mark.parametrize("seed", range(5))
    def test_holds_on_uniform_instances(self, seed):
        inst = UniformWorkload(d=2, n=80, mu=8, T=50, B=10).sample_seeded(seed)
        report = verify_theorem4(inst)
        assert report.all_hold, report.failed()

    def test_holds_on_adversarial_thm6(self):
        from repro.workloads.adversarial import theorem6_instance

        adv = theorem6_instance(d=2, k=6, mu=4.0)
        report = verify_theorem4(adv.instance)
        assert report.all_hold, report.failed()
        # the construction releases a bin per phase transition
        assert report.release_count >= 6

    def test_no_releases_when_everything_fits(self):
        inst = Instance([Item(0, 2, np.array([0.2]), i) for i in range(3)])
        report = verify_theorem4(inst)
        assert report.release_count == 0
        assert report.all_hold

    @given(inst=instances(max_items=20))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_holds_on_random_instances(self, inst):
        report = verify_theorem4(inst)
        assert report.all_hold, report.failed()
