"""Tests for the empirical competitive-ratio search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.competitive import (
    SearchResult,
    certified_ratio,
    mutate_instance,
    random_search,
)
from repro.analysis.theory import upper_bound
from repro.workloads.adversarial import theorem8_instance
from repro.workloads.uniform import UniformWorkload


class TestCertifiedRatio:
    def test_ratio_at_least_one_ish(self):
        inst = UniformWorkload(d=2, n=30, mu=4, T=20, B=5).sample_seeded(0)
        cost, opt_hi, ratio = certified_ratio("move_to_front", inst)
        assert cost > 0 and opt_hi > 0
        assert ratio == pytest.approx(cost / opt_hi)

    def test_certifies_known_bad_instance(self):
        # the Theorem 8 instance certifies a ratio near 2mu for MF
        adv = theorem8_instance(n=8, mu=5.0)
        _, _, ratio = certified_ratio("move_to_front", adv.instance)
        assert ratio > 4.0  # approaching 2mu = 10 from below


class TestMutation:
    def test_mutants_are_valid_instances(self, rng):
        inst = UniformWorkload(d=2, n=10, mu=4, T=10, B=5).sample_seeded(1)
        norm = inst.normalized()
        for _ in range(50):
            norm = mutate_instance(norm, rng)
            assert norm.n >= 1
            assert norm.min_duration >= 1.0 - 1e-9

    def test_mutation_changes_something(self, rng):
        inst = UniformWorkload(d=1, n=10, mu=4, T=10, B=5).sample_seeded(2).normalized()
        mutants = {mutate_instance(inst, rng).to_json() for _ in range(10)}
        assert inst.to_json() not in mutants or len(mutants) > 1


class TestRandomSearch:
    @pytest.fixture(scope="class")
    def result(self):
        return random_search(
            "next_fit", d=1, n=10, mu=4.0, budget=40, hill_climb=30, seed=3
        )

    def test_returns_result(self, result):
        assert isinstance(result, SearchResult)
        assert result.evaluations == 70

    def test_finds_nontrivial_ratio(self, result):
        """The search should beat 1.3 easily for Next Fit at mu=4
        (its CR is ~2*mu)."""
        assert result.ratio > 1.3

    def test_ratio_respects_theory(self, result):
        """No certified ratio may exceed the proven upper bound."""
        inst = result.instance
        assert result.ratio <= upper_bound("next_fit", inst.mu, inst.d) + 1e-6

    def test_reproducible(self):
        a = random_search("first_fit", d=1, n=8, mu=3.0, budget=15,
                          hill_climb=10, seed=9)
        b = random_search("first_fit", d=1, n=8, mu=3.0, budget=15,
                          hill_climb=10, seed=9)
        assert a.ratio == pytest.approx(b.ratio)
        assert a.instance.to_json() == b.instance.to_json()

    def test_search_beats_average_case(self):
        """The worst found instance should be worse than a typical random
        instance for the same algorithm."""
        res = random_search("move_to_front", d=1, n=10, mu=4.0, budget=30,
                            hill_climb=20, seed=5)
        typical = UniformWorkload(d=1, n=100, mu=4, T=80, B=10).sample_seeded(0)
        _, _, typical_ratio = certified_ratio("move_to_front", typical)
        assert res.ratio > typical_ratio
