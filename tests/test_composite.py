"""Tests for composite workloads (mixtures and spikes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.simulation.runner import run
from repro.workloads.composite import MixtureWorkload, SpikeWorkload
from repro.workloads.distributions import DirichletSize, LognormalDuration
from repro.workloads.poisson import PoissonWorkload
from repro.workloads.uniform import UniformWorkload


@pytest.fixture
def base_gen():
    return PoissonWorkload(d=2, rate=0.5, horizon=50,
                           sizes=DirichletSize(min_mag=0.05, max_mag=0.5))


class TestMixture:
    def test_union_of_components(self, rng, base_gen):
        long_jobs = PoissonWorkload(
            d=2, rate=0.1, horizon=50,
            durations=LognormalDuration(log_mean=3.0, floor=10, cap=60),
            sizes=DirichletSize(min_mag=0.05, max_mag=0.3),
        )
        mix = MixtureWorkload(components=(base_gen, long_jobs))
        inst = mix.sample(rng)
        # count is the sum of two component draws: at least a few each
        assert inst.n > 10
        assert inst.d == 2
        assert np.allclose(inst.capacity, 1.0)

    def test_components_normalised(self, rng):
        # mixing a B=100 uniform workload with a unit-capacity Poisson
        # workload must work (both normalised)
        mix = MixtureWorkload(components=(
            UniformWorkload(d=2, n=20, mu=4, T=30, B=100),
            PoissonWorkload(d=2, rate=0.3, horizon=30,
                            sizes=DirichletSize(min_mag=0.05, max_mag=0.5)),
        ))
        inst = mix.sample(rng)
        sizes = np.stack([it.size for it in inst.items])
        assert sizes.max() <= 1.0 + 1e-9

    def test_dimension_mismatch_rejected(self, rng):
        mix = MixtureWorkload(components=(
            UniformWorkload(d=1, n=5, mu=2, T=10, B=10),
            UniformWorkload(d=2, n=5, mu=2, T=10, B=10),
        ))
        with pytest.raises(ConfigurationError):
            mix.sample(rng)

    def test_empty_components_rejected(self):
        with pytest.raises(ConfigurationError):
            MixtureWorkload(components=())

    def test_items_sorted_and_uids_dense(self, rng, base_gen):
        mix = MixtureWorkload(components=(base_gen, base_gen))
        inst = mix.sample(rng)
        arrivals = [it.arrival for it in inst]
        assert arrivals == sorted(arrivals)
        assert [it.uid for it in inst] == list(range(inst.n))

    def test_simulatable(self, rng, base_gen):
        mix = MixtureWorkload(components=(base_gen, base_gen))
        run("move_to_front", mix.sample(rng), validate=True)


class TestSpikes:
    def test_spikes_added(self, rng, base_gen):
        spiky = SpikeWorkload(base=base_gen, num_spikes=2, spike_size=15,
                              spike_demand=(0.1, 0.1), spike_duration=3.0)
        base_n = base_gen.sample(np.random.default_rng(0)).n
        inst = spiky.sample(rng)
        assert inst.n >= 2 * 15  # at least the spike items

    def test_spike_items_simultaneous(self, rng, base_gen):
        spiky = SpikeWorkload(base=base_gen, num_spikes=1, spike_size=10,
                              spike_demand=(0.15, 0.15), spike_duration=2.0)
        inst = spiky.sample(rng)
        # find the arrival time with >= 10 simultaneous items
        from collections import Counter

        counts = Counter(it.arrival for it in inst)
        assert max(counts.values()) >= 10

    def test_dimension_mismatch_rejected(self, rng):
        spiky = SpikeWorkload(
            base=UniformWorkload(d=1, n=10, mu=2, T=10, B=10),
            spike_demand=(0.1, 0.1),
        )
        with pytest.raises(ConfigurationError):
            spiky.sample(rng)

    def test_validation(self, base_gen):
        with pytest.raises(ConfigurationError):
            SpikeWorkload(base=None)
        with pytest.raises(ConfigurationError):
            SpikeWorkload(base=base_gen, num_spikes=0)
        with pytest.raises(ConfigurationError):
            SpikeWorkload(base=base_gen, spike_demand=(1.5, 0.1))
        with pytest.raises(ConfigurationError):
            SpikeWorkload(base=base_gen, spike_duration=0.0)

    def test_simulatable_and_stresses_alignment(self, rng, base_gen):
        """Spikes of identical short jobs are where alignment-aware
        policies shine: MF should beat Worst Fit here."""
        spiky = SpikeWorkload(base=base_gen, num_spikes=4, spike_size=25,
                              spike_demand=(0.12, 0.12), spike_duration=1.5)
        totals = {"move_to_front": 0.0, "worst_fit": 0.0}
        for seed in range(4):
            inst = spiky.sample_seeded(seed)
            for algo in totals:
                totals[algo] += run(algo, inst).cost
        assert totals["move_to_front"] <= totals["worst_fit"]
