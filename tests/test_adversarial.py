"""Tests for the adversarial constructions of Theorems 5, 6, 8.

These verify the *executions* the proofs claim: the targeted algorithms
are forced to the predicted bin counts and costs, and the certified
ratios approach the theoretical targets as the family parameter grows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.registry import make_algorithm
from repro.core.errors import ConfigurationError
from repro.optimum.opt_cost import optimum_cost_bounds
from repro.simulation.runner import run
from repro.workloads.adversarial import (
    best_fit_trap,
    theorem5_instance,
    theorem6_instance,
    theorem8_instance,
)

# Algorithms whose candidate list L contains every open bin.  Next Fit
# is an Any Fit algorithm too, but its L holds only the current bin, so
# the Theorem 5 proof's "R1 items must go into the dk open bins" step
# does not bind it (NF has its own, stronger, Theorem 6 bound).
ANY_FIT_FULL_LIST = ["move_to_front", "first_fit", "best_fit", "worst_fit", "last_fit"]


class TestTheorem5:
    @pytest.mark.parametrize("algorithm", ANY_FIT_FULL_LIST)
    @pytest.mark.parametrize("d,k", [(1, 3), (2, 3), (3, 2)])
    def test_forces_dk_bins_and_predicted_cost(self, algorithm, d, k):
        adv = theorem5_instance(d=d, k=k, mu=4.0)
        packing = run(make_algorithm(algorithm), adv.instance, validate=True)
        assert packing.num_bins >= d * k
        assert packing.cost >= adv.algorithm_cost_lower - 1e-9

    def test_next_fit_escapes_via_single_bin_list(self):
        # NF's candidate list holds only the current bin, so it opens a
        # fresh bin for the R1 overflow and packs the small items
        # together - cheaper than the dk(mu+1) the full-list family pays.
        adv = theorem5_instance(d=2, k=3, mu=4.0)
        nf = run(make_algorithm("next_fit"), adv.instance, validate=True)
        assert nf.cost < adv.algorithm_cost_lower

    def test_opt_upper_is_sound(self):
        adv = theorem5_instance(d=2, k=3, mu=3.0)
        _, opt_hi = optimum_cost_bounds(adv.instance)
        assert opt_hi <= adv.opt_upper + 1e-6

    def test_certified_ratio_grows_towards_target(self):
        mu, d = 4.0, 2
        ratios = [theorem5_instance(d, k, mu).certified_ratio for k in (2, 8, 32)]
        assert ratios == sorted(ratios)
        target = (mu + 1) * d
        assert ratios[-1] > 0.75 * target

    def test_ratio_never_exceeds_target(self):
        for k in (2, 4, 16):
            adv = theorem5_instance(d=2, k=k, mu=5.0)
            assert adv.certified_ratio <= adv.target_ratio + 1e-9

    def test_mu_of_instance_matches(self):
        adv = theorem5_instance(d=2, k=3, mu=6.0)
        assert adv.instance.mu == pytest.approx(6.0, rel=1e-2)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            theorem5_instance(d=0, k=3, mu=2.0)
        with pytest.raises(ConfigurationError):
            theorem5_instance(d=1, k=0, mu=2.0)
        with pytest.raises(ConfigurationError):
            theorem5_instance(d=1, k=1, mu=0.5)
        with pytest.raises(ConfigurationError):
            theorem5_instance(d=1, k=1, mu=2.0, delta=0.9)


class TestTheorem6:
    @pytest.mark.parametrize("d,k", [(1, 4), (2, 4), (3, 2)])
    def test_next_fit_forced_to_predicted_bins(self, d, k):
        adv = theorem6_instance(d=d, k=k, mu=3.0)
        packing = run(make_algorithm("next_fit"), adv.instance, validate=True)
        assert packing.num_bins == 1 + (k - 1) * d
        assert packing.cost >= adv.algorithm_cost_lower - 1e-9

    def test_opt_upper_is_sound(self):
        adv = theorem6_instance(d=2, k=4, mu=3.0)
        _, opt_hi = optimum_cost_bounds(adv.instance)
        assert opt_hi <= adv.opt_upper + 1e-6

    def test_certified_ratio_grows_towards_target(self):
        mu, d = 3.0, 2
        ratios = [theorem6_instance(d, k, mu).certified_ratio for k in (2, 8, 32)]
        assert ratios == sorted(ratios)
        assert ratios[-1] > 0.75 * 2 * mu * d

    def test_other_algorithms_do_better(self):
        # First Fit keeps all bins open and does not fall for this trap
        adv = theorem6_instance(d=2, k=8, mu=5.0)
        nf = run(make_algorithm("next_fit"), adv.instance)
        ff = run(make_algorithm("first_fit"), adv.instance)
        assert ff.cost < nf.cost

    def test_odd_k_rejected(self):
        with pytest.raises(ConfigurationError):
            theorem6_instance(d=1, k=3, mu=2.0)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            theorem6_instance(d=0, k=2, mu=2.0)
        with pytest.raises(ConfigurationError):
            theorem6_instance(d=1, k=2, mu=0.0)


class TestTheorem8:
    @pytest.mark.parametrize("algorithm", ["move_to_front", "next_fit"])
    @pytest.mark.parametrize("n", [2, 5])
    def test_forced_to_2n_bins(self, algorithm, n):
        adv = theorem8_instance(n=n, mu=4.0)
        packing = run(make_algorithm(algorithm), adv.instance, validate=True)
        assert packing.num_bins == 2 * n
        assert packing.cost == pytest.approx(2 * n * 4.0)

    def test_each_bin_holds_one_pair(self):
        adv = theorem8_instance(n=3, mu=2.0)
        packing = run(make_algorithm("move_to_front"), adv.instance)
        for rec in packing.bins:
            assert len(rec.item_uids) == 2

    def test_opt_upper_is_sound(self):
        adv = theorem8_instance(n=4, mu=3.0)
        _, opt_hi = optimum_cost_bounds(adv.instance)
        assert opt_hi <= adv.opt_upper + 1e-6

    def test_certified_ratio_approaches_2mu(self):
        mu = 5.0
        ratios = [theorem8_instance(n, mu).certified_ratio for n in (2, 8, 64)]
        assert ratios == sorted(ratios)
        assert ratios[-1] > 0.9 * 2 * mu

    def test_first_fit_not_trapped_here(self):
        # First Fit routes the small items back into earlier bins (they
        # still fit), so the family does not force 2n bins on FF - the
        # construction is MF/NF-specific, consistent with FF's stronger
        # (mu+3 at d=1) upper bound.
        adv = theorem8_instance(n=3, mu=4.0)
        ff = run(make_algorithm("first_fit"), adv.instance)
        mf = run(make_algorithm("move_to_front"), adv.instance)
        assert ff.cost < mf.cost

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            theorem8_instance(n=0, mu=2.0)
        with pytest.raises(ConfigurationError):
            theorem8_instance(n=2, mu=0.9)


class TestBestFitTrap:
    def test_anchors_end_up_alone(self):
        adv = best_fit_trap(k=4)
        packing = run(make_algorithm("best_fit"), adv.instance, validate=True)
        assert packing.cost >= adv.algorithm_cost_lower - 1e-9

    def test_ratio_grows_with_k(self):
        ratios = []
        for k in (2, 4, 8):
            adv = best_fit_trap(k=k)
            packing = run(make_algorithm("best_fit"), adv.instance)
            ratios.append(packing.cost / adv.opt_upper)
        assert ratios == sorted(ratios)
        assert ratios[-1] > 3.0

    def test_opt_upper_is_sound(self):
        adv = best_fit_trap(k=3)
        _, opt_hi = optimum_cost_bounds(adv.instance)
        assert opt_hi <= adv.opt_upper + 1e-6

    def test_custom_long_duration(self):
        adv = best_fit_trap(k=2, long_duration=100.0)
        assert adv.instance.horizon.end == pytest.approx(6.0 + 100.0)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            best_fit_trap(k=0)
