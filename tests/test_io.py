"""Tests for result persistence (analysis.io)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.io import SCHEMA_VERSION, load_cells, save_cells
from repro.analysis.sweep import sweep_cell
from repro.core.errors import ConfigurationError
from repro.workloads.base import generate_batch
from repro.workloads.uniform import UniformWorkload


@pytest.fixture(scope="module")
def cells():
    gen = UniformWorkload(d=2, n=40, mu=5, T=30, B=10)
    instances = generate_batch(gen, 4, seed=0)
    return [
        sweep_cell(["move_to_front", "first_fit"], instances, params={"d": 2, "mu": 5})
    ]


class TestRoundTrip:
    def test_stats_preserved(self, cells, tmp_path):
        path = str(tmp_path / "out.json")
        save_cells(cells, path)
        loaded = load_cells(path)
        assert len(loaded) == 1
        for algo in ("move_to_front", "first_fit"):
            orig = cells[0].stats[algo]
            back = loaded[0].stats[algo]
            assert back.mean == pytest.approx(orig.mean)
            assert back.std == pytest.approx(orig.std)
            assert back.count == orig.count

    def test_params_preserved(self, cells, tmp_path):
        path = str(tmp_path / "out.json")
        save_cells(cells, path)
        assert load_cells(path)[0].params == {"d": 2, "mu": 5}

    def test_raw_ratios_preserved(self, cells, tmp_path):
        path = str(tmp_path / "out.json")
        save_cells(cells, path, include_raw=True)
        loaded = load_cells(path)
        assert loaded[0].ratios["move_to_front"] == pytest.approx(
            cells[0].ratios["move_to_front"]
        )

    def test_raw_ratios_omittable(self, cells, tmp_path):
        path = str(tmp_path / "out.json")
        save_cells(cells, path, include_raw=False)
        assert load_cells(path)[0].ratios == {}

    def test_parent_dirs_created(self, cells, tmp_path):
        path = str(tmp_path / "a" / "b" / "out.json")
        save_cells(cells, path)
        assert load_cells(path)


class TestSchema:
    def test_schema_header_written(self, cells, tmp_path):
        path = str(tmp_path / "out.json")
        save_cells(cells, path)
        with open(path) as fh:
            payload = json.load(fh)
        assert payload["schema"] == SCHEMA_VERSION

    def test_unknown_schema_rejected(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as fh:
            json.dump({"schema": 999, "cells": []}, fh)
        with pytest.raises(ConfigurationError):
            load_cells(path)

    def test_file_is_human_readable(self, cells, tmp_path):
        path = str(tmp_path / "out.json")
        save_cells(cells, path)
        text = Path(path).read_text()
        assert "move_to_front" in text and "\n" in text
