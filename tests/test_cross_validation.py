"""Cross-validation: the engine's algorithms vs independent references.

Each Any Fit policy is re-implemented here from scratch, directly from
the paper's prose, with no shared code beyond NumPy — a different data
layout (dict-based bins, no observer machinery, no base class).  Every
policy's engine packing must match its reference *assignment-for-
assignment* on random instances.  This is the strongest guard against
subtle engine/base-class bugs (it caught nothing by luck — it verifies
by construction).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np
import pytest

from repro.algorithms.registry import make_algorithm
from repro.core.instance import Instance
from repro.simulation.runner import run
from repro.workloads.uniform import UniformWorkload

TOL = 1e-9


class _RefBin:
    __slots__ = ("index", "load", "uids", "open", "last_used")

    def __init__(self, index: int, d: int):
        self.index = index
        self.load = np.zeros(d)
        self.uids = set()
        self.open = True
        self.last_used = -1  # sequence number of last pack


def _reference(instance: Instance, policy: str, seed: int = 0) -> Dict[int, int]:
    """Independent Any Fit implementation.  Returns uid -> bin index."""
    cap = instance.capacity
    slack = cap + TOL * np.maximum(cap, 1.0)
    bins: List[_RefBin] = []
    where: Dict[int, _RefBin] = {}
    assignment: Dict[int, int] = {}
    rng = np.random.default_rng(seed)
    current: Optional[_RefBin] = None  # for next_fit
    seq = 0

    events = []
    for it in instance.items:
        events.append((it.arrival, 1, it.uid, it))
        events.append((it.departure, 0, it.uid, it))
    events.sort(key=lambda e: (e[0], e[1], e[2]))

    for t, kind, _, item in events:
        if kind == 0:
            b = where.pop(item.uid)
            b.uids.discard(item.uid)
            b.load = b.load - item.size
            if not b.uids:
                b.open = False
                if current is b:
                    current = None
            continue

        if policy == "next_fit":
            candidates = [current] if (current is not None and current.open) else []
        else:
            candidates = [b for b in bins if b.open]
        fitting = [b for b in candidates if np.all(b.load + item.size <= slack)]

        chosen: Optional[_RefBin] = None
        if fitting:
            if policy == "first_fit":
                chosen = min(fitting, key=lambda b: b.index)
            elif policy == "last_fit":
                chosen = max(fitting, key=lambda b: b.index)
            elif policy == "move_to_front":
                chosen = max(fitting, key=lambda b: b.last_used)
            elif policy == "best_fit":
                chosen = max(fitting, key=lambda b: (np.max(b.load), -b.index))
            elif policy == "worst_fit":
                chosen = min(fitting, key=lambda b: (np.max(b.load), b.index))
            elif policy == "random_fit":
                chosen = fitting[int(rng.integers(len(fitting)))]
            elif policy == "next_fit":
                chosen = fitting[0]
            else:
                raise ValueError(policy)
        if chosen is None:
            chosen = _RefBin(len(bins), instance.d)
            bins.append(chosen)
            if policy == "next_fit":
                current = chosen
        chosen.load = chosen.load + item.size
        chosen.uids.add(item.uid)
        chosen.last_used = seq
        seq += 1
        where[item.uid] = chosen
        assignment[item.uid] = chosen.index
    return assignment


DETERMINISTIC = ["first_fit", "last_fit", "move_to_front", "best_fit",
                 "worst_fit", "next_fit"]


@pytest.mark.parametrize("policy", DETERMINISTIC)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_engine_matches_reference(policy, seed):
    inst = UniformWorkload(d=2, n=150, mu=15, T=80, B=10).sample_seeded(seed)
    engine_assignment = dict(run(make_algorithm(policy), inst).assignment)
    ref_assignment = _reference(inst, policy)
    assert engine_assignment == ref_assignment


@pytest.mark.parametrize("policy", DETERMINISTIC)
def test_engine_matches_reference_dense_5d(policy):
    inst = UniformWorkload(d=5, n=120, mu=10, T=40, B=10).sample_seeded(9)
    assert dict(run(make_algorithm(policy), inst).assignment) == _reference(inst, policy)


@pytest.mark.parametrize("policy", DETERMINISTIC)
def test_engine_matches_reference_on_adversarial(policy):
    from repro.workloads.adversarial import theorem5_instance

    inst = theorem5_instance(d=2, k=4, mu=4.0).instance
    assert dict(run(make_algorithm(policy), inst).assignment) == _reference(inst, policy)


def test_move_to_front_recency_semantics():
    """MF's 'most recently used' reference uses pack-sequence recency —
    confirm the engine agrees on a case where recency differs from
    opening order AND from load order."""
    inst = Instance.from_tuples(
        [
            (0, 9, [0.5]),   # -> bin 0
            (0, 9, [0.6]),   # -> bin 1 (front)
            (0, 9, [0.35]),  # fits bin 1? 0.95 yes -> bin 1; bin1 full-ish
            (0, 9, [0.45]),  # fits bin 0 only -> bin 0 (now most recent)
            (0, 9, [0.04]),  # fits both; MF -> bin 0 (recent), FF -> bin 0 too
            (0, 9, [0.05]),  # fits bin 1 (0.95+0.05=1.0); bin 0 is 0.99+
        ]
    )
    mf = dict(run(make_algorithm("move_to_front"), inst).assignment)
    assert mf == _reference(inst, "move_to_front")
