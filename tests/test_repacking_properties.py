"""Property-based tests for the repacking engine (Hypothesis).

Driven by :func:`repro.verify.strategies.repacking_configs` crossed with
the grid-valued instance strategy: random (repacker, budget) pairs on
random instances must never violate the hard invariants, whatever the
policy decides to move —

* capacity feasibility at every intermediate load (replayed from the
  residency segments, not the engine's own bins);
* the migration cap: per-event move counts within the budget for
  per-event policies, cumulative moves within the accrued credit for
  amortized ones — re-derived from the raw move log, never trusting the
  ledger that enforced it;
* segments tiling each item's ``[arrival, departure)`` exactly;
* the Eq. 1 cost recomputed from first principles matching the engine's
  reported cost;
* budget zero collapsing to the classic engine bit for bit.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.algorithms.registry import make_algorithm
from repro.repacking import (
    audit_repacking,
    first_principles_cost,
    repacking_run,
    replay_budget_check,
)
from repro.simulation.runner import run
from repro.verify import strategies as sts

_TOL = 1e-9


def _algo(policy):
    kwargs = {"seed": 0} if policy == "random_fit" else {}
    return make_algorithm(policy, **kwargs)


@given(
    inst=sts.instances(max_items=14),
    policy=sts.policies(),
    config=sts.repacking_configs(),
)
def test_random_budgets_never_violate_invariants(inst, policy, config):
    repacker, budget = config
    result = repacking_run(_algo(policy), inst, repacker=repacker, budget=budget)
    assert audit_repacking(result) == [], (
        f"{policy}/{repacker}:{budget:g} failed the audit: "
        f"{audit_repacking(result)[:3]}"
    )


@given(
    inst=sts.instances(max_items=14),
    policy=sts.policies(),
    config=sts.repacking_configs(),
)
def test_migration_cap_holds_on_the_raw_move_log(inst, policy, config):
    repacker, budget = config
    result = repacking_run(_algo(policy), inst, repacker=repacker, budget=budget)
    assert replay_budget_check(
        result.moves, result.budget, result.mode, result.ledger.events
    ) == []
    assert tuple(result.ledger.moves) == result.moves
    if result.mode == "per_event":
        assert result.ledger.max_moves_per_event() <= int(result.budget)
    else:
        assert result.num_moves <= result.budget * result.ledger.events + _TOL


@given(
    inst=sts.instances(max_items=14),
    policy=sts.policies(),
    config=sts.repacking_configs(),
)
def test_first_principles_cost_matches_engine(inst, policy, config):
    repacker, budget = config
    result = repacking_run(_algo(policy), inst, repacker=repacker, budget=budget)
    recomputed = first_principles_cost(inst, result.segments)
    assert result.cost == pytest.approx(recomputed, rel=_TOL, abs=_TOL)
    # every live item ends the run where the assignment says it is
    for uid, segs in result.segments.items():
        assert segs[-1][0] == result.packing.assignment[uid]


@given(inst=sts.instances(max_items=14), policy=sts.policies())
def test_budget_zero_collapses_to_classic(inst, policy):
    classic = run(_algo(policy), inst)
    for repacker in ("no_repack", "greedy_consolidate", "budgeted_rebalance"):
        result = repacking_run(_algo(policy), inst, repacker=repacker, budget=0.0)
        assert result.num_moves == 0
        assert dict(result.packing.assignment) == dict(classic.assignment)
        assert result.cost == classic.cost


@given(inst=sts.adversarial_instances(), config=sts.repacking_configs())
def test_invariants_hold_on_lower_bound_gadgets(inst, config):
    """The Theorem 5/6/8 gadgets lean on simultaneous arrivals and exact
    fits — the worst case for repack-window edge handling (same-instant
    departers, zero-length residencies, full-bin evacuations)."""
    repacker, budget = config
    result = repacking_run(_algo("first_fit"), inst, repacker=repacker, budget=budget)
    assert audit_repacking(result) == []


@pytest.mark.fuzz
@settings(max_examples=300, deadline=None)
@given(
    inst=sts.instances(max_items=20, jitter=True),
    policy=sts.policies(),
    config=sts.repacking_configs(),
)
def test_deep_jittered_budgets_never_violate_invariants(inst, policy, config):
    """CI fuzz variant: off-grid sizes and a wider search."""
    repacker, budget = config
    result = repacking_run(_algo(policy), inst, repacker=repacker, budget=budget)
    assert audit_repacking(result) == []
