"""Unit tests for repro.core.items."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidItemError
from repro.core.intervals import Interval
from repro.core.items import Item, make_item


class TestValidation:
    def test_basic_construction(self):
        it = Item(1.0, 3.0, np.array([0.5, 0.2]), uid=7)
        assert it.arrival == 1.0
        assert it.departure == 3.0
        assert it.uid == 7

    def test_scalar_size_promoted(self):
        assert Item(0.0, 1.0, 0.5).d == 1

    def test_departure_must_exceed_arrival(self):
        with pytest.raises(InvalidItemError):
            Item(2.0, 2.0, np.array([0.1]))

    def test_departure_before_arrival_rejected(self):
        with pytest.raises(InvalidItemError):
            Item(2.0, 1.0, np.array([0.1]))

    def test_negative_arrival_rejected(self):
        with pytest.raises(InvalidItemError):
            Item(-0.5, 1.0, np.array([0.1]))

    def test_nonfinite_times_rejected(self):
        with pytest.raises(InvalidItemError):
            Item(0.0, np.inf, np.array([0.1]))

    def test_negative_size_rejected(self):
        with pytest.raises(InvalidItemError):
            Item(0.0, 1.0, np.array([-0.1]))

    def test_size_is_frozen(self):
        it = Item(0.0, 1.0, np.array([0.5]))
        with pytest.raises(ValueError):
            it.size[0] = 0.9


class TestDerived:
    def test_duration(self):
        assert Item(1.0, 4.5, 0.1).duration == 3.5

    def test_interval(self):
        assert Item(1.0, 4.0, 0.1).interval == Interval(1.0, 4.0)

    def test_max_demand(self):
        assert Item(0.0, 1.0, np.array([0.2, 0.9, 0.4])).max_demand == 0.9

    def test_utilization(self):
        it = Item(0.0, 3.0, np.array([0.2, 0.5]))
        assert it.utilization == pytest.approx(1.5)

    def test_active_at_half_open(self):
        it = Item(1.0, 2.0, 0.1)
        assert it.active_at(1.0)
        assert it.active_at(1.5)
        assert not it.active_at(2.0)
        assert not it.active_at(0.9)

    def test_d(self):
        assert Item(0.0, 1.0, np.array([0.1, 0.2, 0.3])).d == 3


class TestTransforms:
    def test_scaled_scalar(self):
        it = Item(0.0, 1.0, np.array([0.4, 0.8]), uid=3)
        scaled = it.scaled(0.5)
        assert np.allclose(scaled.size, [0.2, 0.4])
        assert scaled.uid == 3

    def test_scaled_vector(self):
        it = Item(0.0, 1.0, np.array([10.0, 20.0]))
        scaled = it.scaled(np.array([0.1, 0.01]))
        assert np.allclose(scaled.size, [1.0, 0.2])

    def test_shifted(self):
        it = Item(1.0, 2.0, 0.1)
        sh = it.shifted(3.0)
        assert sh.arrival == 4.0 and sh.departure == 5.0

    def test_with_uid(self):
        assert Item(0.0, 1.0, 0.1, uid=1).with_uid(9).uid == 9

    def test_with_departure(self):
        it = Item(0.0, 1.0, 0.1).with_departure(5.0)
        assert it.duration == 5.0


class TestEqualityHash:
    def test_equal_items(self):
        a = Item(0.0, 1.0, np.array([0.5]), uid=1)
        b = Item(0.0, 1.0, np.array([0.5]), uid=1)
        assert a == b
        assert hash(a) == hash(b)

    def test_uid_distinguishes(self):
        a = Item(0.0, 1.0, np.array([0.5]), uid=1)
        b = Item(0.0, 1.0, np.array([0.5]), uid=2)
        assert a != b

    def test_size_distinguishes(self):
        a = Item(0.0, 1.0, np.array([0.5]), uid=1)
        b = Item(0.0, 1.0, np.array([0.6]), uid=1)
        assert a != b

    def test_usable_in_sets(self):
        a = Item(0.0, 1.0, np.array([0.5]), uid=1)
        b = Item(0.0, 1.0, np.array([0.5]), uid=1)
        assert len({a, b}) == 1


class TestMakeItem:
    def test_from_duration(self):
        it = make_item(2.0, 3.0, 0.5, uid=4)
        assert it.departure == 5.0 and it.uid == 4

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(InvalidItemError):
            make_item(0.0, 0.0, 0.5)
