"""Unit tests for the exact optimum cost (Eq. 2 integral)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from repro.core.instance import Instance
from repro.core.items import Item
from repro.optimum.opt_cost import active_segments, optimum_cost, optimum_cost_bounds
from repro.simulation.runner import run
from repro.workloads.uniform import UniformWorkload


def inst_1d(*triples):
    return Instance.from_tuples([(a, e, [s]) for a, e, s in triples])


class TestActiveSegments:
    def test_single_item(self):
        segs = active_segments(inst_1d((0, 2, 0.5)))
        assert len(segs) == 1
        t0, t1, active = segs[0]
        assert (t0, t1) == (0, 2)
        assert [it.uid for it in active] == [0]

    def test_gap_segment_skipped(self):
        segs = active_segments(inst_1d((0, 1, 0.5), (2, 3, 0.5)))
        assert [(s[0], s[1]) for s in segs] == [(0, 1), (2, 3)]

    def test_overlap_split(self):
        segs = active_segments(inst_1d((0, 2, 0.5), (1, 3, 0.5)))
        assert [(s[0], s[1]) for s in segs] == [(0, 1), (1, 2), (2, 3)]
        assert len(segs[1][2]) == 2


class TestOptimumCost:
    def test_single_item(self):
        assert optimum_cost(inst_1d((0, 3, 0.5))) == pytest.approx(3.0)

    def test_compatible_items_share(self):
        assert optimum_cost(inst_1d((0, 2, 0.4), (0, 2, 0.4))) == pytest.approx(2.0)

    def test_conflicting_items_split(self):
        assert optimum_cost(inst_1d((0, 2, 0.6), (0, 2, 0.6))) == pytest.approx(4.0)

    def test_repacking_advantage(self):
        # Three items; with repacking allowed OPT(R,t) is pointwise
        # minimal even when no static assignment achieves it.
        inst = inst_1d((0, 2, 0.6), (1, 3, 0.6), (2, 4, 0.6))
        # loads: [0,1): 0.6 -> 1; [1,2): 1.2 -> 2; [2,3): 1.2 -> 2; [3,4): 0.6 -> 1
        assert optimum_cost(inst) == pytest.approx(1 + 2 + 2 + 1)

    def test_theorem8_construction_opt(self):
        # the Theorem 8 proof's OPT: n bins of paired 1/2-items (cost 1
        # each) + 1 bin of all small items (cost mu)
        from repro.workloads.adversarial import theorem8_instance

        n, mu = 3, 4.0
        adv = theorem8_instance(n, mu)
        assert optimum_cost(adv.instance) <= adv.opt_upper + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_no_online_algorithm_beats_opt(self, seed):
        inst = UniformWorkload(d=2, n=12, mu=4, T=12, B=4).sample_seeded(seed)
        opt = optimum_cost(inst)
        for name in PAPER_ALGORITHMS:
            packing = run(make_algorithm(name), inst)
            assert packing.cost >= opt - 1e-9, f"{name} beat OPT?!"

    def test_multi_dim(self):
        inst = Instance(
            [
                Item(0, 2, np.array([0.9, 0.1]), 0),
                Item(0, 2, np.array([0.1, 0.9]), 1),
                Item(0, 2, np.array([0.9, 0.1]), 2),
            ]
        )
        # dim-0 total 1.9 -> 2 bins for [0,2)
        assert optimum_cost(inst) == pytest.approx(4.0)


class TestOptimumBounds:
    @pytest.mark.parametrize("seed", range(5))
    def test_bracket_contains_exact(self, seed):
        inst = UniformWorkload(d=2, n=14, mu=4, T=12, B=4).sample_seeded(seed)
        lo, hi = optimum_cost_bounds(inst)
        opt = optimum_cost(inst)
        assert lo - 1e-9 <= opt <= hi + 1e-9

    def test_bracket_ordering(self, uniform_small):
        lo, hi = optimum_cost_bounds(uniform_small)
        assert lo <= hi

    def test_bracket_fast_on_paper_scale(self):
        inst = UniformWorkload(d=2, n=500, mu=10, T=500, B=100).sample_seeded(1)
        lo, hi = optimum_cost_bounds(inst)
        assert 0 < lo <= hi
