"""Tests for simulation traces and instance profiling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.first_fit import FirstFit
from repro.algorithms.random_fit import RandomFit
from repro.core.instance import Instance
from repro.core.items import Item
from repro.simulation.engine import simulate
from repro.simulation.trace import TraceRecorder, render_trace, traces_equal
from repro.workloads.describe import describe_instance, render_description
from repro.workloads.uniform import UniformWorkload


class TestTraceRecorder:
    def test_record_counts(self, tiny_instance):
        rec = TraceRecorder()
        simulate(FirstFit(), tiny_instance, observers=[rec])
        kinds = [r.kind for r in rec.records]
        assert kinds.count("pack") == 3
        assert kinds.count("depart") == 3
        assert kinds.count("open") == len([r for r in rec.packs() if r.flag])

    def test_pack_loads_match_replay(self, uniform_small):
        rec = TraceRecorder()
        packing = simulate(FirstFit(), uniform_small, observers=[rec])
        # the last 'depart' record of each bin must have zero load
        last_depart = {}
        for r in rec.records:
            if r.kind == "depart":
                last_depart[r.bin_index] = r
        for r in last_depart.values():
            if r.flag:  # closed
                assert all(abs(x) < 1e-9 for x in r.load_after)

    def test_deterministic_policy_identical_traces(self, uniform_small):
        a, b = TraceRecorder(), TraceRecorder()
        simulate(FirstFit(), uniform_small, observers=[a])
        simulate(FirstFit(), uniform_small, observers=[b])
        assert traces_equal(a, b)

    def test_seeded_random_fit_identical_traces(self, uniform_small):
        a, b = TraceRecorder(), TraceRecorder()
        simulate(RandomFit(seed=4), uniform_small, observers=[a])
        simulate(RandomFit(seed=4), uniform_small, observers=[b])
        assert traces_equal(a, b)

    def test_different_policies_different_traces(self):
        from repro.algorithms.last_fit import LastFit

        inst = Instance(
            [Item(0, 9, np.array([0.5]), 0), Item(0, 9, np.array([0.6]), 1),
             Item(0, 9, np.array([0.3]), 2)]
        )
        a, b = TraceRecorder(), TraceRecorder()
        simulate(FirstFit(), inst, observers=[a])
        simulate(LastFit(), inst, observers=[b])
        assert not traces_equal(a, b)

    def test_render_contains_key_events(self, tiny_instance):
        rec = TraceRecorder()
        simulate(FirstFit(), tiny_instance, observers=[rec])
        text = render_trace(rec)
        assert "pack" in text and "depart" in text and "first_fit" in text

    def test_render_truncation(self, uniform_small):
        rec = TraceRecorder()
        simulate(FirstFit(), uniform_small, observers=[rec])
        text = render_trace(rec, max_records=5)
        assert "more records" in text


class TestDescribe:
    def test_profile_basic_fields(self, uniform_small):
        p = describe_instance(uniform_small)
        assert p.n == uniform_small.n
        assert p.d == uniform_small.d
        assert p.mu == pytest.approx(uniform_small.mu)
        assert p.span == pytest.approx(uniform_small.span)

    def test_duration_stats_ordered(self, uniform_small):
        p = describe_instance(uniform_small)
        assert p.duration_median <= p.duration_p95 + 1e-9
        assert 0 < p.duration_mean <= p.duration_p95 * 2

    def test_peak_load_at_least_mean(self, uniform_small):
        p = describe_instance(uniform_small)
        for peak, mean in zip(p.peak_load, p.time_weighted_load_mean):
            assert peak >= mean - 1e-9

    def test_concurrency_sane(self):
        # two fully overlapping items: concurrency exactly 2 throughout
        inst = Instance(
            [Item(0, 4, np.array([0.2]), 0), Item(0, 4, np.array([0.2]), 1)]
        )
        p = describe_instance(inst)
        assert p.concurrency_mean == pytest.approx(2.0)
        assert p.concurrency_p95 == pytest.approx(2.0)

    def test_normalises_capacity(self):
        inst = UniformWorkload(d=2, n=50, mu=5, T=30, B=100).sample_seeded(0)
        p = describe_instance(inst)
        assert 0 < p.max_demand_mean <= 1.0  # fractions of capacity

    def test_render_mentions_key_lines(self, uniform_small):
        text = render_description(uniform_small)
        assert "durations" in text and "peak load" in text

    def test_as_dict_round(self, uniform_small):
        d = describe_instance(uniform_small).as_dict()
        assert d["n"] == uniform_small.n and "peak_load" in d
