"""Property-based tests for the fast-path engine (Hypothesis).

Driven by the :mod:`repro.verify.strategies` library: grid-valued
sizes/times make ties, exact fits, and simultaneous arrivals dense in
the search space — exactly the coincidences where a flat-array replay
could diverge from the classic engine by an ulp or a tie-break.

Every generated packing must (a) equal the classic engine's packing bit
for bit, and (b) pass the full invariant auditor — capacity feasibility,
half-open ``[a, e)`` semantics, the Any Fit replay, and the
Theorem 2/3/4 upper bounds where they apply.

The tier-1 profile keeps the cases small and derandomised; the CI fuzz
job widens the search via ``HYPOTHESIS_PROFILE=ci`` plus the
``fuzz``-marked deep variants (off-grid jittered sizes, both backends).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.algorithms.registry import make_algorithm
from repro.simulation.fastpath import FastEngine, available_backends, fast_simulate
from repro.simulation.runner import run
from repro.verify import strategies as sts
from repro.verify.invariants import audit_run
from repro.verify.oracles import cost_check

BACKENDS = available_backends()


def _classic(policy, inst):
    kwargs = {"seed": 0} if policy == "random_fit" else {}
    return run(make_algorithm(policy, **kwargs), inst)


@given(inst=sts.instances(max_items=14), policy=sts.policies())
def test_fastpath_equals_classic(inst, policy):
    classic = _classic(policy, inst)
    fast = fast_simulate(policy, inst, seed=0)
    assert fast.assignment == classic.assignment
    assert fast.cost == pytest.approx(classic.cost, rel=1e-12, abs=1e-12)


@given(inst=sts.instances(max_items=14), policy=sts.policies())
def test_fastpath_packing_passes_auditor(inst, policy):
    """The fast packing independently satisfies every run invariant:
    capacity, half-open intervals, Any Fit replay, theorem bounds."""
    fast = fast_simulate(policy, inst, seed=0)
    assert audit_run(fast, policy) == []
    assert cost_check(fast) == []


@given(inst=sts.adversarial_instances(), policy=sts.policies())
def test_fastpath_on_lower_bound_gadgets(inst, policy):
    """The paper's adversarial gadget families lean on simultaneous
    arrivals and exact fits — worst case for tie-break fidelity."""
    classic = _classic(policy, inst)
    fast = fast_simulate(policy, inst, seed=0)
    assert fast.assignment == classic.assignment


@given(inst=sts.instances(max_items=14), seed=sts.trial_seeds())
def test_trial_lockstep_rng_streams_pinned(inst, seed):
    """Batched trials on every tier (numba included when importable)
    consume per-seed ``default_rng(seed)`` streams identical to the
    classic engine's — one draw per non-empty candidate set, in event
    order, regardless of how the trial loop is fused."""
    classic = run(make_algorithm("random_fit", seed=seed), inst)
    for backend in BACKENDS:
        batched = FastEngine(inst, "random_fit", backend=backend).run_trials(
            [seed]
        )
        assert batched[0] == dict(classic.assignment), (backend, seed)


@pytest.mark.fuzz
@settings(max_examples=300, deadline=None)
@given(inst=sts.instances(max_items=20, jitter=True), policy=sts.policies())
def test_fastpath_equals_classic_jittered_deep(inst, policy):
    """Deep variant: off-grid continuous sizes exercise the EPS
    tolerance on every backend, and the auditor re-checks the result."""
    classic = _classic(policy, inst)
    for backend in BACKENDS:
        fast = FastEngine(inst, policy, seed=0, backend=backend).run()
        assert fast.assignment == classic.assignment, backend
    assert audit_run(classic, policy) == []


@pytest.mark.fuzz
@settings(max_examples=200, deadline=None)
@given(inst=sts.instances(max_items=25), policy=sts.policies())
def test_fastpath_auditor_deep(inst, policy):
    fast = fast_simulate(policy, inst, seed=0)
    assert audit_run(fast, policy) == []
    assert cost_check(fast) == []
