"""Three-way differential: classic Engine vs ReferenceSimulator vs FastEngine.

The bit-identity acceptance gate for the fast path.  Every policy in the
registry's Section 7 set is replayed over the full 22-recipe verification
corpus (:mod:`repro.verify.generators`) through three independent
implementations:

* the classic object-per-bin :class:`~repro.simulation.engine.Engine`;
* the brute-force :class:`~repro.verify.reference.ReferenceSimulator`
  (no shared engine code);
* the flat-array :class:`~repro.simulation.fastpath.FastEngine`, on
  every available kernel backend.

All three must agree on the *exact* item → bin assignment — not merely
the cost — and the Eq. 1 cost recomputed from first principles must
match the packings' reported cost.  The corpus recipes cover the shapes
where flat-array bugs hide: d ∈ {1..8}, μ from 2 to 20, simultaneous
arrivals, departure/arrival ties, near-capacity sizes, and churny
workloads that exercise departure re-sums and slot compaction.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from repro.simulation.fastpath import FastEngine, available_backends
from repro.simulation.runner import run
from repro.verify.generators import CORPUS_RECIPES, corpus_list
from repro.verify.oracles import eq1_cost
from repro.verify.reference import ReferenceSimulator

_SEED = 20230613
_TOL = 1e-9

# One instance per recipe: the full corpus breadth, deterministic.
CORPUS = corpus_list(len(CORPUS_RECIPES), seed=_SEED)
BACKENDS = available_backends()


def _ids(entries):
    return [e.recipe for e in entries]


@pytest.mark.parametrize("policy", PAPER_ALGORITHMS)
@pytest.mark.parametrize("entry", CORPUS, ids=_ids(CORPUS))
def test_three_way_assignment_identity(policy, entry):
    inst = entry.instance
    kwargs = {"seed": 0} if policy == "random_fit" else {}

    classic = run(make_algorithm(policy, **kwargs), inst)
    reference = ReferenceSimulator(policy, seed=0).run(inst)
    assert classic.assignment == reference.assignment, (
        f"classic vs reference diverged on {entry.recipe}/{policy}"
    )

    expected_cost = eq1_cost(inst, classic.assignment)
    assert classic.cost == pytest.approx(expected_cost, rel=_TOL, abs=_TOL)

    for backend in BACKENDS:
        fast = FastEngine(inst, policy, seed=0, backend=backend).run()
        assert fast.assignment == classic.assignment, (
            f"fastpath[{backend}] vs classic diverged on {entry.recipe}/{policy}"
        )
        assert fast.num_bins == classic.num_bins
        assert fast.cost == pytest.approx(expected_cost, rel=_TOL, abs=_TOL)


@pytest.mark.parametrize("backend", BACKENDS)
def test_random_fit_seed_stream_matches_classic(backend):
    """Non-zero seeds: the fast kernel must consume the identical RNG
    stream (same draw count, same modulus) as the classic engine."""
    for seed in (1, 7, 12345):
        for entry in CORPUS[:5]:
            classic = run(make_algorithm("random_fit", seed=seed), entry.instance)
            fast = FastEngine(
                entry.instance, "random_fit", seed=seed, backend=backend
            ).run()
            assert fast.assignment == classic.assignment, (entry.recipe, seed)


# The four-backend matrix names every kernel tier explicitly — numpy,
# python, vectorized, numba — so a numba-equipped host runs the JIT legs
# and a numba-less host *visibly skips* them instead of silently testing
# three tiers and reporting green.
_ALL_TIERS = ("numpy", "python", "vectorized", "numba")


def _require(backend):
    if backend not in BACKENDS:
        pytest.skip(f"{backend} backend unavailable on this host")


#: The L1/Lp measure-kernel legs of the matrix: every ranked-policy
#: measure the registry accepts, including a generic (non-shortcut)
#: Lp exponent where pow-identity is hardest to preserve.
_MEASURE_SPECS = (
    ("best_fit", {"measure": "l1"}, "best_fit:l1"),
    ("best_fit", {"measure": "lp", "p": 2.0}, "best_fit:lp:2.0"),
    ("best_fit", {"measure": "lp", "p": 3.0}, "best_fit:lp:3.0"),
    ("worst_fit", {"measure": "l1"}, "worst_fit:l1"),
    ("worst_fit", {"measure": "lp", "p": 2.5}, "worst_fit:lp:2.5"),
)


@pytest.mark.parametrize("backend", _ALL_TIERS)
@pytest.mark.parametrize(
    "base,kwargs,spec", _MEASURE_SPECS, ids=[s[2] for s in _MEASURE_SPECS]
)
def test_measure_kernel_matrix(backend, base, kwargs, spec):
    """L1/Lp ranked policies: every backend replays the classic engine
    bit for bit across the corpus (strided: the full-corpus sweep runs
    in the default-measure test above)."""
    _require(backend)
    for entry in CORPUS[::3]:
        classic = run(make_algorithm(base, **kwargs), entry.instance)
        fast = FastEngine(entry.instance, spec, backend=backend).run()
        assert fast.assignment == classic.assignment, (entry.recipe, spec)
        assert fast.num_bins == classic.num_bins


@pytest.mark.parametrize("backend", _ALL_TIERS)
def test_trials_lockstep_matrix(backend):
    """Batched ``run_trials`` on every tier must equal per-seed classic
    random_fit runs — same seeds, same assignments, in seed order."""
    _require(backend)
    seeds = [0, 1, 2, 3]
    for entry in CORPUS[:6]:
        engine = FastEngine(entry.instance, "random_fit", backend=backend)
        batched = engine.run_trials(seeds)
        for seed, assignment in zip(seeds, batched):
            classic = run(make_algorithm("random_fit", seed=seed), entry.instance)
            assert assignment == dict(classic.assignment), (
                entry.recipe, backend, seed,
            )
