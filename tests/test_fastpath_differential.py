"""Three-way differential: classic Engine vs ReferenceSimulator vs FastEngine.

The bit-identity acceptance gate for the fast path.  Every policy in the
registry's Section 7 set is replayed over the full 22-recipe verification
corpus (:mod:`repro.verify.generators`) through three independent
implementations:

* the classic object-per-bin :class:`~repro.simulation.engine.Engine`;
* the brute-force :class:`~repro.verify.reference.ReferenceSimulator`
  (no shared engine code);
* the flat-array :class:`~repro.simulation.fastpath.FastEngine`, on
  every available kernel backend.

All three must agree on the *exact* item → bin assignment — not merely
the cost — and the Eq. 1 cost recomputed from first principles must
match the packings' reported cost.  The corpus recipes cover the shapes
where flat-array bugs hide: d ∈ {1..8}, μ from 2 to 20, simultaneous
arrivals, departure/arrival ties, near-capacity sizes, and churny
workloads that exercise departure re-sums and slot compaction.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from repro.simulation.fastpath import FastEngine, available_backends
from repro.simulation.runner import run
from repro.verify.generators import CORPUS_RECIPES, corpus_list
from repro.verify.oracles import eq1_cost
from repro.verify.reference import ReferenceSimulator

_SEED = 20230613
_TOL = 1e-9

# One instance per recipe: the full corpus breadth, deterministic.
CORPUS = corpus_list(len(CORPUS_RECIPES), seed=_SEED)
BACKENDS = available_backends()


def _ids(entries):
    return [e.recipe for e in entries]


@pytest.mark.parametrize("policy", PAPER_ALGORITHMS)
@pytest.mark.parametrize("entry", CORPUS, ids=_ids(CORPUS))
def test_three_way_assignment_identity(policy, entry):
    inst = entry.instance
    kwargs = {"seed": 0} if policy == "random_fit" else {}

    classic = run(make_algorithm(policy, **kwargs), inst)
    reference = ReferenceSimulator(policy, seed=0).run(inst)
    assert classic.assignment == reference.assignment, (
        f"classic vs reference diverged on {entry.recipe}/{policy}"
    )

    expected_cost = eq1_cost(inst, classic.assignment)
    assert classic.cost == pytest.approx(expected_cost, rel=_TOL, abs=_TOL)

    for backend in BACKENDS:
        fast = FastEngine(inst, policy, seed=0, backend=backend).run()
        assert fast.assignment == classic.assignment, (
            f"fastpath[{backend}] vs classic diverged on {entry.recipe}/{policy}"
        )
        assert fast.num_bins == classic.num_bins
        assert fast.cost == pytest.approx(expected_cost, rel=_TOL, abs=_TOL)


@pytest.mark.parametrize("backend", BACKENDS)
def test_random_fit_seed_stream_matches_classic(backend):
    """Non-zero seeds: the fast kernel must consume the identical RNG
    stream (same draw count, same modulus) as the classic engine."""
    for seed in (1, 7, 12345):
        for entry in CORPUS[:5]:
            classic = run(make_algorithm("random_fit", seed=seed), entry.instance)
            fast = FastEngine(
                entry.instance, "random_fit", seed=seed, backend=backend
            ).run()
            assert fast.assignment == classic.assignment, (entry.recipe, seed)
