"""Behavioural tests for the seven Any Fit algorithms on hand-crafted
sequences where their choices provably differ."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.best_fit import BestFit, WorstFit
from repro.algorithms.first_fit import FirstFit
from repro.algorithms.last_fit import LastFit
from repro.algorithms.move_to_front import MoveToFront
from repro.algorithms.next_fit import NextFit
from repro.algorithms.random_fit import RandomFit
from repro.core.instance import Instance
from repro.core.items import Item
from repro.simulation.engine import simulate


def seq_1d(sizes, horizon=10.0):
    """All items arrive at t=0 in order and stay until ``horizon``."""
    return Instance(
        [Item(0.0, horizon, np.array([s]), uid=i) for i, s in enumerate(sizes)]
    )


@pytest.fixture
def fork_instance():
    """A(0.5) -> bin 0; B(0.6) -> bin 1; C(0.3) distinguishes policies.

    C fits both bins.  First/Worst Fit pick bin 0 (earliest / least
    loaded); Best/Last/MoveToFront pick bin 1 (most loaded / latest
    opened / most recently used).
    """
    return seq_1d([0.5, 0.6, 0.3])


class TestFirstFit:
    def test_picks_earliest_fitting(self, fork_instance):
        packing = simulate(FirstFit(), fork_instance)
        assert packing.assignment[2] == 0

    def test_skips_full_earlier_bins(self):
        packing = simulate(FirstFit(), seq_1d([0.9, 0.5, 0.4]))
        # 0.4 does not fit bin 0 (0.9); goes to bin 1 (0.5)
        assert packing.assignment[2] == 1

    def test_opens_only_when_nothing_fits(self):
        packing = simulate(FirstFit(), seq_1d([0.9, 0.9, 0.9]))
        assert packing.num_bins == 3


class TestLastFit:
    def test_picks_latest_opened(self, fork_instance):
        packing = simulate(LastFit(), fork_instance)
        assert packing.assignment[2] == 1

    def test_falls_back_to_earlier_bins(self):
        packing = simulate(LastFit(), seq_1d([0.5, 0.9, 0.3]))
        # bin 1 (0.9) cannot take 0.3; bin 0 can
        assert packing.assignment[2] == 0


class TestBestFit:
    def test_picks_most_loaded(self, fork_instance):
        packing = simulate(BestFit(), fork_instance)
        assert packing.assignment[2] == 1

    def test_tie_breaks_to_lowest_index(self):
        packing = simulate(BestFit(), seq_1d([0.6, 0.6, 0.3]))
        assert packing.assignment[2] == 0

    def test_skips_most_loaded_if_full(self):
        packing = simulate(BestFit(), seq_1d([0.8, 0.5, 0.3]))
        # bin 0 at 0.8 can't fit 0.3; bin 1 (0.5) can
        assert packing.assignment[2] == 1

    def test_linf_vs_l1_measures_differ(self):
        inst = Instance(
            [
                Item(0, 10, np.array([0.8, 0.1]), 0),
                Item(0, 10, np.array([0.5, 0.5]), 1),
                Item(0, 10, np.array([0.1, 0.1]), 2),
            ]
        )
        by_linf = simulate(BestFit(measure="linf"), inst)
        by_l1 = simulate(BestFit(measure="l1"), inst)
        assert by_linf.assignment[2] == 0  # linf loads: 0.8 vs 0.5
        assert by_l1.assignment[2] == 1  # l1 loads: 0.9 vs 1.0

    def test_lp_measure_runs(self, fork_instance):
        packing = simulate(BestFit(measure="lp", p=2.0), fork_instance)
        packing.validate()

    def test_invalid_measure_rejected(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            BestFit(measure="max")

    def test_invalid_p_rejected(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            BestFit(measure="lp", p=0.5)


class TestWorstFit:
    def test_picks_least_loaded(self, fork_instance):
        packing = simulate(WorstFit(), fork_instance)
        assert packing.assignment[2] == 0

    def test_tie_breaks_to_lowest_index(self):
        packing = simulate(WorstFit(), seq_1d([0.6, 0.6, 0.3]))
        assert packing.assignment[2] == 0


class TestMoveToFront:
    def test_picks_most_recently_used(self, fork_instance):
        packing = simulate(MoveToFront(), fork_instance)
        assert packing.assignment[2] == 1

    def test_recency_updated_by_pack_not_open(self):
        # A(0.5)->B0, B(0.6)->B1, C(0.2)->B1 (recent), D(0.2): B1 is
        # still most recent (just used), fits -> B1 again
        packing = simulate(MoveToFront(), seq_1d([0.5, 0.6, 0.2, 0.2]))
        assert packing.assignment[2] == 1
        assert packing.assignment[3] == 1

    def test_front_bin_skipped_when_full(self):
        # A(0.5)->B0; B(0.9)->B1 (front); C(0.3): B1 full, B0 next
        packing = simulate(MoveToFront(), seq_1d([0.5, 0.9, 0.3]))
        assert packing.assignment[2] == 0

    def test_paper_trace_theorem8_pairs(self):
        # odd 1/2-items pair with following small items in fresh bins
        sizes = [0.5, 0.1, 0.5, 0.1]
        packing = simulate(MoveToFront(), seq_1d(sizes))
        assert packing.assignment == {0: 0, 1: 0, 2: 1, 3: 1}


class TestNextFit:
    def test_only_current_bin_considered(self):
        # A(0.6)->B0; B(0.5) doesn't fit -> B1 current; C(0.3) fits B0
        # but NF can't see it -> B1
        packing = simulate(NextFit(), seq_1d([0.6, 0.5, 0.3]))
        assert packing.assignment[2] == 1

    def test_released_bin_never_reused(self):
        # ...continuing: D(0.4) fits B0 exactly but NF opens B2
        packing = simulate(NextFit(), seq_1d([0.6, 0.5, 0.3, 0.4]))
        assert packing.assignment[3] == 2

    def test_current_bin_closure_starts_fresh(self):
        inst = Instance(
            [
                Item(0, 1, np.array([0.6]), 0),
                Item(2, 3, np.array([0.6]), 1),  # arrives after bin closed
            ]
        )
        packing = simulate(NextFit(), inst)
        assert packing.num_bins == 2
        packing.validate()

    def test_release_times_recorded(self):
        algo = NextFit()
        simulate(algo, seq_1d([0.6, 0.5, 0.3]))
        assert 0 in algo.release_times  # bin 0 was released at t=0

    def test_at_most_one_candidate(self):
        algo = NextFit()
        simulate(algo, seq_1d([0.3, 0.3, 0.3]))
        assert len(algo.open_list) <= 1


class TestRandomFit:
    def test_same_seed_same_packing(self, uniform_small):
        p1 = simulate(RandomFit(seed=5), uniform_small)
        p2 = simulate(RandomFit(seed=5), uniform_small)
        assert p1.assignment == p2.assignment

    def test_reuse_of_object_is_deterministic(self, uniform_small):
        algo = RandomFit(seed=5)
        p1 = simulate(algo, uniform_small)
        p2 = simulate(algo, uniform_small)
        assert p1.assignment == p2.assignment

    def test_different_seeds_usually_differ(self, uniform_small):
        packings = [simulate(RandomFit(seed=s), uniform_small) for s in range(6)]
        assignments = {tuple(sorted(p.assignment.items())) for p in packings}
        assert len(assignments) > 1

    def test_valid_packing(self, uniform_small):
        simulate(RandomFit(seed=0), uniform_small).validate()
