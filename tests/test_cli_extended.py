"""Tests for the extended CLI subcommands (search/offline/generate/run)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main


def test_search_reports_ratio(capsys):
    assert main(["search", "--algorithm", "next_fit", "--budget", "10",
                 "--hill-climb", "5", "--n", "8", "--mu", "3"]) == 0
    out = capsys.readouterr().out
    assert "certified competitive ratio" in out


def test_search_saves_instance(capsys, tmp_path):
    path = str(tmp_path / "worst.json")
    assert main(["search", "--algorithm", "first_fit", "--budget", "5",
                 "--hill-climb", "3", "--n", "6", "--mu", "2",
                 "--save", path]) == 0
    payload = json.loads(Path(path).read_text())
    assert payload["items"]


def test_offline_compares_solutions(capsys):
    assert main(["offline", "--n", "25", "--mu", "5"]) == 0
    out = capsys.readouterr().out
    assert "offline greedy" in out and "repack optimum" in out


def test_offline_greedy_not_absurd(capsys):
    """Regression: the offline greedy once reported hull-inflated costs
    an order of magnitude above online policies."""
    assert main(["offline", "--n", "40", "--mu", "10", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    costs = {}
    for line in out.splitlines():
        if "|" in line and "cost" not in line and "-+-" not in line:
            label, value = [p.strip() for p in line.split("|")]
            if not value.startswith("["):
                costs[label] = float(value)
    assert costs["offline greedy (no repack)"] <= 1.5 * costs["online move_to_front"]


def test_generate_then_run_roundtrip(capsys, tmp_path):
    path = str(tmp_path / "inst.json")
    assert main(["generate", path, "--n", "30", "--mu", "4"]) == 0
    assert main(["run", path, "--algorithm", "move_to_front", "--validate"]) == 0
    out = capsys.readouterr().out
    assert "cost" in out


def test_generate_trace_workload(tmp_path):
    path = str(tmp_path / "trace.json")
    assert main(["generate", path, "--workload", "trace"]) == 0
    payload = json.loads(Path(path).read_text())
    assert len(payload["items"]) > 5


def test_generate_poisson_workload(tmp_path):
    path = str(tmp_path / "poisson.json")
    assert main(["generate", path, "--workload", "poisson", "--d", "3"]) == 0
    payload = json.loads(Path(path).read_text())
    assert len(payload["capacity"]) == 3


def test_verify_theorem2(capsys):
    assert main(["verify", "--theorem", "2", "--n", "80", "--mu", "8"]) == 0
    out = capsys.readouterr().out
    assert "claim1" in out and "all inequalities hold: True" in out


def test_verify_theorem4(capsys):
    assert main(["verify", "--theorem", "4", "--n", "80", "--mu", "8"]) == 0
    out = capsys.readouterr().out
    assert "theorem4" in out and "all inequalities hold: True" in out


def test_attack_single_with_trajectory(capsys):
    assert main(["attack", "--attack", "leader_targeting", "--mu", "4",
                 "--rounds", "6", "--trajectory", "4"]) == 0
    out = capsys.readouterr().out
    assert "leader_targeting vs move_to_front" in out
    assert "certified_ratio" in out
    assert "certified-ratio trajectory" in out
    assert "ratio=" in out


def test_attack_json_output(capsys):
    assert main(["attack", "--attack", "next_fit_churner", "--mu", "2",
                 "--rounds", "4", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["attack"] == "next_fit_churner"
    assert payload["policy"] == "next_fit"
    assert payload["replay_identical"] is True


def test_attack_amplifier_threshold(capsys):
    assert main(["attack", "--attack", "best_fit_amplifier", "--mu", "1",
                 "--threshold", "5", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["certified_ratio"] >= 5.0
    assert payload["theoretical_bound"] is None


@pytest.mark.slow
def test_attack_all_runs_scenario_grid(capsys):
    assert main(["attack", "--attack", "all"]) == 0
    out = capsys.readouterr().out
    assert "Must-exceed-bound scenario grid" in out
    assert "FAIL" not in out
    assert out.count("PASS") == 8


class TestOrchestrationFlags:
    """The fault-tolerance knobs added to run/figure4/experiments."""

    @pytest.fixture()
    def instance_path(self, tmp_path):
        path = str(tmp_path / "inst.json")
        assert main(["generate", path, "--n", "20", "--seed", "4"]) == 0
        return path

    def test_run_reports_effective_engine_on_fallback(self, capsys, tmp_path,
                                                      instance_path,
                                                      monkeypatch):
        import repro.simulation.fastpath as fastpath
        from repro.simulation.engine import reset_fallback_warnings

        reset_fallback_warnings()
        # a policy with its kernel nulled out: requested fast, runs classic
        monkeypatch.setattr(fastpath, "fast_policy_for", lambda *_a: None)
        with pytest.warns(RuntimeWarning):
            assert main(["run", instance_path, "--algorithm", "first_fit",
                         "--engine", "fast"]) == 0
        out = capsys.readouterr().out
        assert "classic engine; fast requested" in out

    def test_run_effective_engine_matches_when_eligible(self, capsys,
                                                        instance_path):
        assert main(["run", instance_path, "--algorithm", "first_fit",
                     "--engine", "fast"]) == 0
        out = capsys.readouterr().out
        assert "(fast engine)" in out

    def test_run_retries_flag_accepted(self, capsys, instance_path):
        assert main(["run", instance_path, "--algorithm", "move_to_front",
                     "--retries", "2", "--unit-timeout", "60"]) == 0
        assert "cost" in capsys.readouterr().out

    def test_figure4_checkpoint_and_resume(self, capsys, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        assert main(["figure4", "--scale", "smoke",
                     "--checkpoint-dir", ckpt]) == 0
        first = capsys.readouterr().out
        assert main(["figure4", "--scale", "smoke",
                     "--checkpoint-dir", ckpt, "--resume"]) == 0
        second = capsys.readouterr().out
        assert first == second  # resume is bit-identical
        import os

        assert any("manifest.json" in files
                   for _root, _dirs, files in os.walk(ckpt))

    def test_experiments_subcommand_writes_artifacts(self, capsys, tmp_path):
        out_dir = str(tmp_path / "artifacts")
        assert main(["experiments", "--artifacts", "table2",
                     "--out-dir", out_dir]) == 0
        import os

        assert os.path.exists(os.path.join(out_dir, "table2.txt"))
        # resumed invocation skips the finished artifact
        assert main(["experiments", "--artifacts", "table2",
                     "--out-dir", out_dir, "--resume"]) == 0
        assert "skipping" in capsys.readouterr().out

    def test_experiments_prints_when_no_out_dir(self, capsys):
        assert main(["experiments", "--artifacts", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out
