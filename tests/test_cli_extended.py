"""Tests for the extended CLI subcommands (search/offline/generate/run)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_search_reports_ratio(capsys):
    assert main(["search", "--algorithm", "next_fit", "--budget", "10",
                 "--hill-climb", "5", "--n", "8", "--mu", "3"]) == 0
    out = capsys.readouterr().out
    assert "certified competitive ratio" in out


def test_search_saves_instance(capsys, tmp_path):
    path = str(tmp_path / "worst.json")
    assert main(["search", "--algorithm", "first_fit", "--budget", "5",
                 "--hill-climb", "3", "--n", "6", "--mu", "2",
                 "--save", path]) == 0
    payload = json.loads(open(path).read())
    assert payload["items"]


def test_offline_compares_solutions(capsys):
    assert main(["offline", "--n", "25", "--mu", "5"]) == 0
    out = capsys.readouterr().out
    assert "offline greedy" in out and "repack optimum" in out


def test_offline_greedy_not_absurd(capsys):
    """Regression: the offline greedy once reported hull-inflated costs
    an order of magnitude above online policies."""
    assert main(["offline", "--n", "40", "--mu", "10", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    costs = {}
    for line in out.splitlines():
        if "|" in line and "cost" not in line and "-+-" not in line:
            label, value = [p.strip() for p in line.split("|")]
            if not value.startswith("["):
                costs[label] = float(value)
    assert costs["offline greedy (no repack)"] <= 1.5 * costs["online move_to_front"]


def test_generate_then_run_roundtrip(capsys, tmp_path):
    path = str(tmp_path / "inst.json")
    assert main(["generate", path, "--n", "30", "--mu", "4"]) == 0
    assert main(["run", path, "--algorithm", "move_to_front", "--validate"]) == 0
    out = capsys.readouterr().out
    assert "cost" in out


def test_generate_trace_workload(tmp_path):
    path = str(tmp_path / "trace.json")
    assert main(["generate", path, "--workload", "trace"]) == 0
    payload = json.loads(open(path).read())
    assert len(payload["items"]) > 5


def test_generate_poisson_workload(tmp_path):
    path = str(tmp_path / "poisson.json")
    assert main(["generate", path, "--workload", "poisson", "--d", "3"]) == 0
    payload = json.loads(open(path).read())
    assert len(payload["capacity"]) == 3


def test_verify_theorem2(capsys):
    assert main(["verify", "--theorem", "2", "--n", "80", "--mu", "8"]) == 0
    out = capsys.readouterr().out
    assert "claim1" in out and "all inequalities hold: True" in out


def test_verify_theorem4(capsys):
    assert main(["verify", "--theorem", "4", "--n", "80", "--mu", "8"]) == 0
    out = capsys.readouterr().out
    assert "theorem4" in out and "all inequalities hold: True" in out
