"""Tests for simulation metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.first_fit import FirstFit
from repro.core.instance import Instance
from repro.core.items import Item
from repro.simulation.engine import simulate
from repro.simulation.metrics import (
    compute_metrics,
    cost_breakdown_by_bin,
    open_bins_timeline,
)


@pytest.fixture
def packing(tiny_instance):
    return simulate(FirstFit(), tiny_instance)


class TestTimeline:
    def test_segments_tile_horizon(self, packing):
        segments = open_bins_timeline(packing)
        assert segments[0][0].start == packing.instance.horizon.start
        assert segments[-1][0].end == packing.instance.horizon.end
        for (a, _), (b, _) in zip(segments, segments[1:]):
            assert a.end == pytest.approx(b.start)

    def test_counts_match_bins_open_at(self, packing):
        for iv, count in open_bins_timeline(packing):
            mid = (iv.start + iv.end) / 2
            assert count == packing.bins_open_at(mid)

    def test_integral_of_timeline_equals_cost(self, packing):
        total = sum(iv.length * count for iv, count in open_bins_timeline(packing))
        assert total == pytest.approx(packing.cost)

    def test_zero_count_segment_in_gap(self):
        inst = Instance(
            [Item(0, 1, np.array([0.5]), 0), Item(3, 4, np.array([0.5]), 1)]
        )
        p = simulate(FirstFit(), inst)
        counts = {(iv.start, iv.end): c for iv, c in open_bins_timeline(p)}
        assert counts[(1.0, 3.0)] == 0


class TestBreakdown:
    def test_sums_to_cost(self, packing):
        assert sum(cost_breakdown_by_bin(packing).values()) == pytest.approx(
            packing.cost
        )

    def test_keys_are_bin_indices(self, packing):
        assert set(cost_breakdown_by_bin(packing)) == {
            r.index for r in packing.bins
        }


class TestComputeMetrics:
    def test_fields_consistent(self, packing):
        m = compute_metrics(packing)
        assert m.cost == pytest.approx(packing.cost)
        assert m.num_bins == packing.num_bins
        assert m.span == pytest.approx(packing.instance.span)
        assert m.max_concurrent == packing.max_concurrent_bins()

    def test_mean_concurrent(self, packing):
        m = compute_metrics(packing)
        horizon = packing.instance.horizon.length
        assert m.mean_concurrent == pytest.approx(packing.cost / horizon)

    def test_mean_bin_lifetime(self, packing):
        m = compute_metrics(packing)
        lifetimes = [r.usage_time for r in packing.bins]
        assert m.mean_bin_lifetime == pytest.approx(np.mean(lifetimes))

    def test_as_dict_keys(self, packing):
        d = compute_metrics(packing).as_dict()
        assert "cost" in d and "mean_concurrent" in d

    def test_utilization_bounded(self, uniform_small):
        p = simulate(FirstFit(), uniform_small)
        m = compute_metrics(p)
        assert 0 < m.average_utilization <= 1.0
