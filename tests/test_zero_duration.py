"""Zero-duration items (``a(r) == e(r)``): identical rejection everywhere.

Section 2.1 defines an item's active interval as half-open
``[a(r), e(r))``, so ``a(r) == e(r)`` describes an *empty* interval — an
item that would be packed and depart in the same instant.  The model
rejects such items at construction; these tests pin that the rejection
is identical at every layer (core model, classic engine path, fast
engine path, reference simulator — all share the one constructor), and
that the boundary case just above it (touching items, where one item
arrives exactly as another departs) is handled identically by all three
execution layers, Eq. 1 cost included.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from repro.core.errors import InvalidItemError
from repro.core.instance import Instance
from repro.core.items import Item, make_item
from repro.simulation.fastpath import FAST_POLICIES, FastEngine
from repro.simulation.runner import run
from repro.verify.oracles import eq1_cost
from repro.verify.reference import ReferenceSimulator


class TestZeroDurationRejected:
    def test_item_constructor_rejects(self):
        with pytest.raises(InvalidItemError):
            Item(arrival=1.0, departure=1.0, size=(0.5,), uid=0)

    def test_make_item_rejects_zero_duration(self):
        with pytest.raises(InvalidItemError):
            make_item(arrival=1.0, duration=0.0, size=0.5)

    def test_negative_duration_rejected_too(self):
        with pytest.raises(InvalidItemError):
            Item(arrival=2.0, departure=1.0, size=(0.5,), uid=0)

    def test_rejection_is_shared_by_every_layer(self):
        """No layer can even *receive* a zero-duration item.

        The classic engine, the fast engine, and the reference simulator
        all consume :class:`Instance`, and an instance is a tuple of
        validated :class:`Item` objects — so the rejection above is
        provably identical across layers: there is exactly one gate.
        """
        with pytest.raises(InvalidItemError):
            Instance([Item(arrival=0.0, departure=0.0, size=(0.5,), uid=0)])

    def test_from_dict_rejects_zero_duration(self):
        # the worker-path round-trip revalidates
        good = Instance([make_item(0.0, 1.0, 0.5, uid=0)])
        payload = good.to_dict()
        payload["items"][0]["departure"] = payload["items"][0]["arrival"]
        with pytest.raises(InvalidItemError):
            Instance.from_dict(payload)


class TestTouchingItems:
    """One item arrives exactly when another departs (a2 == e1)."""

    @pytest.fixture()
    def touching(self):
        items = [
            make_item(0.0, 5.0, 0.9, uid=0),   # occupies [0, 5)
            make_item(5.0, 3.0, 0.9, uid=1),   # arrives at exactly 5
            make_item(5.0, 2.0, 0.05, uid=2),  # small co-arrival
        ]
        return Instance(items, capacity=1.0, name="touching")

    @pytest.mark.parametrize("policy", PAPER_ALGORITHMS)
    def test_classic_fast_reference_agree(self, touching, policy):
        kwargs = {"seed": 0} if policy == "random_fit" else {}
        classic = run(make_algorithm(policy, **kwargs), touching)
        ref = ReferenceSimulator(policy, seed=0).run(touching)
        assert dict(classic.assignment) == ref.assignment
        assert classic.num_bins == ref.num_bins
        if policy in FAST_POLICIES:
            fast = FastEngine(touching, policy, seed=0).run()
            assert dict(fast.assignment) == dict(classic.assignment)
            assert fast.cost == classic.cost

    def test_half_open_departure_first_and_eq1_cost(self, touching):
        # departures sort before arrivals at equal times (half-open
        # semantics): item 0's departure at t=5 empties and *closes* its
        # bin, so item 1 (size 0.9, which could never co-reside with
        # item 0) opens a fresh bin rather than overflowing the old one
        packing = run(make_algorithm("first_fit"), touching)
        assert packing.assignment[1] != packing.assignment[0]
        assert packing.assignment[2] == packing.assignment[1]
        assert packing.num_bins == 2
        assert packing.cost == pytest.approx(
            eq1_cost(touching, packing.assignment)
        )
        # usage: bin A spans [0,5), bin B spans [5,8) — no double count
        # and no gap at the touching instant
        assert packing.cost == pytest.approx(8.0)
