"""Tests for the adaptive adversary subsystem (repro.adversaries).

Three layers:

* **Must-exceed-bound scenarios** — every pinned scenario of
  :data:`repro.adversaries.MUST_EXCEED_SCENARIOS` achieves the certified
  fraction of its theorem's lower bound (or the ratio threshold, for the
  Theorem 7 unboundedness attacks) against the live engine, and the
  induced instance replays bit-identically through the classic engine.
* **Induced instances are first-class** — they pass the invariant
  auditor and all four engine differential oracles
  (reference / fastpath / streaming / batch), so the whole verification
  machinery applies to adversarial instances with no special cases.
* **The check has teeth** — the state-blind :class:`NullAdversary` must
  *fail* the same must-exceed check (the mutation smoke-test mirror),
  and the config validation rejects nonsense parameters.

A deeper (mu, d) grid is marked ``slow`` and excluded from tier-1.
"""

from __future__ import annotations

import math

import pytest

from repro.adversaries import (
    ATTACKS,
    MUST_EXCEED_SCENARIOS,
    Adversary,
    AdversaryDriver,
    AttackConfig,
    AttackScenario,
    make_adversary,
    must_exceed_report,
    null_adversary_outcome,
    run_attack,
    run_scenario,
)
from repro.core.errors import ConfigurationError
from repro.simulation.runner import run
from repro.verify.invariants import audit_instance, audit_run
from repro.verify.mutation import mutation_smoke_test
from repro.verify.oracles import (
    compare_with_batch,
    compare_with_fastpath,
    compare_with_reference,
    compare_with_streaming,
)

# cache: driving an attack is not free, and several tests inspect the
# same scenario outcomes — run each pinned scenario once per session
_OUTCOMES = {}


def _outcome(scenario, seed=0):
    key = (scenario, seed)
    if key not in _OUTCOMES:
        _OUTCOMES[key] = run_scenario(scenario, seed=seed)
    return _OUTCOMES[key]


# ---------------------------------------------------------------------------
# must-exceed-bound scenarios
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "scenario", MUST_EXCEED_SCENARIOS, ids=lambda s: s.label
)
def test_scenario_exceeds_bound(scenario):
    """Each attack certifies >= 90% of its theorem's bound (or the
    threshold) at its pinned (mu, d) points — the PR's acceptance bar."""
    outcome = _outcome(scenario)
    assert outcome.passed, outcome.message
    assert outcome.achieved >= outcome.required
    assert outcome.result.replay_identical


@pytest.mark.parametrize(
    "scenario", MUST_EXCEED_SCENARIOS, ids=lambda s: s.label
)
def test_scenario_bound_matches_theory(scenario):
    """The required value is the closed-form bound from repro.analysis.theory."""
    from repro.analysis.theory import (
        any_fit_lower_bound,
        move_to_front_lower_bound,
        next_fit_lower_bound,
    )

    outcome = _outcome(scenario)
    result = outcome.result
    if scenario.attack == "duration_revealing":
        assert result.theoretical_bound == any_fit_lower_bound(scenario.mu, scenario.d)
    elif scenario.attack == "next_fit_churner":
        assert result.theoretical_bound == next_fit_lower_bound(scenario.mu, scenario.d)
    elif scenario.attack == "leader_targeting":
        assert result.theoretical_bound == move_to_front_lower_bound(
            scenario.mu, scenario.d
        )
    else:  # best_fit_amplifier: Theorem 7 — unbounded
        assert math.isinf(result.theoretical_bound)
        assert outcome.required == scenario.threshold


def test_amplifier_respects_configured_threshold():
    """The amplifier stops promptly once past an arbitrary threshold."""
    res = run_attack(
        "best_fit_amplifier",
        config=AttackConfig(mu=1.0, d=1, ratio_threshold=7.5),
    )
    assert res.certified_ratio >= 7.5
    # it must stop soon after crossing, not run to the item cap
    assert res.n < 100


# ---------------------------------------------------------------------------
# induced instances are first-class citizens
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "scenario", MUST_EXCEED_SCENARIOS, ids=lambda s: s.label
)
def test_induced_instance_passes_auditor_and_oracles(scenario):
    """Auditor + all four engine differentials on every induced instance."""
    outcome = _outcome(scenario)
    inst = outcome.result.instance
    policy = scenario.policy
    assert audit_instance(inst) == []
    packing = run(policy, inst)
    assert audit_run(packing, policy) == []
    assert compare_with_reference(packing, policy, seed=0) == []
    assert compare_with_fastpath(packing, policy, seed=0) == []
    assert compare_with_streaming(packing, policy, seed=0) == []
    assert compare_with_batch(inst, {policy: packing}, seed=0) == []


def test_trajectory_is_monotone_and_consistent():
    """Cost is committed (never decreases) and the last trajectory point
    agrees with the final result."""
    res = run_attack("leader_targeting", config=AttackConfig(mu=4.0, d=1))
    assert len(res.trajectory) == res.n
    costs = [p.committed_cost for p in res.trajectory]
    assert all(b >= a - 1e-12 for a, b in zip(costs, costs[1:]))
    last = res.trajectory[-1]
    assert last.committed_cost == pytest.approx(res.cost)
    assert last.opt_upper == pytest.approx(res.opt_upper)
    assert last.certified_ratio == pytest.approx(res.certified_ratio)
    assert [p.step for p in res.trajectory] == list(range(res.n))


def test_certificate_dominates_bracket_lower_bound():
    """opt_upper is a true OPT upper bound: >= the certified FFD-bracket
    lower bound on the same instance (the driver cross-checks this too)."""
    from repro.optimum.opt_cost import optimum_cost_bounds

    for scenario in MUST_EXCEED_SCENARIOS[:4]:
        res = _outcome(scenario).result
        lo, _hi = optimum_cost_bounds(res.instance)
        assert res.opt_upper >= lo - 1e-9 * max(1.0, res.opt_upper)


# ---------------------------------------------------------------------------
# the check has teeth (mutation mirror)
# ---------------------------------------------------------------------------


def test_null_adversary_fails_the_bound_check():
    """The state-blind mutant must NOT reach the bound."""
    outcome = null_adversary_outcome(seed=0)
    assert not outcome.passed
    assert outcome.achieved < outcome.required
    # but its instance is still perfectly valid and replayable
    assert outcome.result.replay_identical
    assert audit_instance(outcome.result.instance) == []


def test_mutation_smoke_test_catches_null_adversary():
    report = mutation_smoke_test(seed=0)
    assert report.null_adversary_caught
    assert report.all_caught
    assert report.null_adversary_violations == []


def test_must_exceed_report_covers_all_scenarios():
    outcomes = must_exceed_report(seed=0)
    assert len(outcomes) == len(MUST_EXCEED_SCENARIOS)
    assert all(o.passed for o in outcomes)
    # every lower-bound theorem family and both unbounded policies appear
    attacks = {o.scenario.attack for o in outcomes}
    assert attacks == {
        "duration_revealing",
        "next_fit_churner",
        "leader_targeting",
        "best_fit_amplifier",
    }
    assert {o.scenario.policy for o in outcomes} >= {"best_fit", "worst_fit"}


# ---------------------------------------------------------------------------
# config validation and registry
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"mu": 0.5},
        {"d": 0},
        {"rounds": 0},
        {"target_fraction": 0.0},
        {"target_fraction": 1.0},
        {"ratio_threshold": 1.0},
        {"max_items": 4},
    ],
)
def test_attack_config_rejects_invalid(kwargs):
    with pytest.raises(ConfigurationError):
        AttackConfig(**kwargs)


def test_one_dimensional_attacks_reject_higher_d():
    for name in ("leader_targeting", "best_fit_amplifier"):
        with pytest.raises(ConfigurationError):
            make_adversary(name, AttackConfig(mu=4.0, d=2))


def test_unknown_attack_rejected():
    with pytest.raises(ConfigurationError):
        make_adversary("no_such_attack", AttackConfig())


def test_registry_is_complete():
    assert set(ATTACKS) == {
        "duration_revealing",
        "next_fit_churner",
        "leader_targeting",
        "best_fit_amplifier",
        "null_adversary",
    }
    for name, cls in ATTACKS.items():
        assert cls.name == name
        assert issubclass(cls, Adversary)


def test_rng_access_before_reset_raises():
    adv = make_adversary("null_adversary", AttackConfig())
    with pytest.raises(ConfigurationError):
        _ = adv.rng


def test_max_items_cap_trips_on_runaway_attack():
    """An attack that never stops is an error, not a hang."""

    class Runaway(Adversary):
        name = "runaway"

        def next_item(self, view):
            from repro.core.items import make_item

            return make_item(float(view.emitted), 1.0, [0.1] * view.d)

    with pytest.raises(Exception) as excinfo:
        AdversaryDriver(Runaway(AttackConfig(max_items=16))).run()
    assert "max_items" in str(excinfo.value)


def test_driver_rejects_decreasing_arrivals():
    class TimeTraveller(Adversary):
        name = "time_traveller"

        def next_item(self, view):
            from repro.core.items import make_item

            if view.emitted == 0:
                return make_item(5.0, 1.0, [0.1] * view.d)
            if view.emitted == 1:
                return make_item(1.0, 1.0, [0.1] * view.d)
            return None

    with pytest.raises(Exception) as excinfo:
        AdversaryDriver(TimeTraveller(AttackConfig())).run()
    assert "decreasing" in str(excinfo.value)


# ---------------------------------------------------------------------------
# deeper grid (excluded from tier-1 via the slow marker)
# ---------------------------------------------------------------------------

_DEEP_GRID = [
    AttackScenario("duration_revealing", "first_fit", mu=2.0, d=1),
    AttackScenario("duration_revealing", "first_fit", mu=3.0, d=2),
    AttackScenario("duration_revealing", "first_fit", mu=2.0, d=3),
    AttackScenario("next_fit_churner", "next_fit", mu=4.0, d=1),
    AttackScenario("next_fit_churner", "next_fit", mu=2.0, d=3),
    AttackScenario("leader_targeting", "move_to_front", mu=2.0, d=1),
    AttackScenario("leader_targeting", "move_to_front", mu=8.0, d=1),
    AttackScenario("best_fit_amplifier", "best_fit", mu=1.0, d=1, threshold=120.0),
    AttackScenario("best_fit_amplifier", "worst_fit", mu=1.0, d=1, threshold=120.0),
]


@pytest.mark.slow
@pytest.mark.parametrize("scenario", _DEEP_GRID, ids=lambda s: s.label)
def test_deep_grid_exceeds_bound(scenario):
    outcome = run_scenario(scenario, seed=0)
    assert outcome.passed, outcome.message


@pytest.mark.slow
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_scenarios_hold_across_seeds(seed):
    """The constructions are seed-robust, not one lucky draw."""
    for outcome in must_exceed_report(seed=seed):
        assert outcome.passed, f"seed={seed}: {outcome.message}"
