"""Unit tests for the flat-array fast-path engine (repro.simulation.fastpath).

The bit-identity contract itself is exercised exhaustively by
``tests/test_fastpath_differential.py`` (corpus) and
``tests/test_fastpath_properties.py`` (Hypothesis); this module covers
the machinery around it: backend selection, eligibility resolution, the
single-use contract, collector counters, slot growth/compaction, and the
runner / parallel-sweep / bench / CLI integration points.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.algorithms.best_fit import BestFit, WorstFit
from repro.algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from repro.cli import main
from repro.core.errors import AlgorithmError, ConfigurationError
from repro.core.instance import Instance
from repro.core.items import Item
from repro.observability.bench import (
    FASTPATH_SMOKE_SCENARIOS,
    merge_fastpath,
    run_fastpath_scenario,
)
from repro.observability.stats import StatsCollector
from repro.simulation.billing import QuantumAwareMoveToFront
from repro.simulation.engine import Engine, simulate
from repro.simulation.fastpath import (
    BACKEND_ENV,
    FAST_POLICIES,
    FastEngine,
    available_backends,
    default_backend,
    fast_policy_for,
    fast_simulate,
)
from repro.simulation.parallel import parallel_sweep, simulate_chunk, simulate_unit
from repro.simulation.runner import run, run_many
from repro.workloads.uniform import UniformWorkload

BACKENDS = available_backends()


@pytest.fixture
def churny_instance():
    """Short durations + tight bins: lots of departures and bin reuse."""
    return UniformWorkload(d=2, n=80, mu=4, T=30, B=6).sample_seeded(11)


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_numpy_preferred_when_available(self):
        assert BACKENDS[0] == "numpy"
        assert "python" in BACKENDS

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        assert default_backend() == "python"
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert default_backend() == "numpy"

    def test_env_override_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "fortran")
        with pytest.raises(ConfigurationError):
            default_backend()

    def test_explicit_backend_rejects_unknown(self, tiny_instance):
        with pytest.raises(ConfigurationError):
            FastEngine(tiny_instance, "first_fit", backend="fortran")

    def test_unknown_policy_rejected(self, tiny_instance):
        with pytest.raises(ConfigurationError):
            FastEngine(tiny_instance, "harmonic")


# ----------------------------------------------------------------------
# eligibility resolution
# ----------------------------------------------------------------------
class TestFastPolicyFor:
    def test_registry_names(self):
        for policy in PAPER_ALGORITHMS:
            assert fast_policy_for(policy) == (policy, 0)
        assert fast_policy_for("not_a_policy") is None

    def test_stock_objects_resolve(self):
        for policy in PAPER_ALGORITHMS:
            kwargs = {"seed": 0} if policy == "random_fit" else {}
            assert fast_policy_for(make_algorithm(policy, **kwargs)) == (policy, 0)

    def test_random_fit_carries_seed(self):
        assert fast_policy_for(make_algorithm("random_fit", seed=7)) == ("random_fit", 7)

    def test_nondefault_measure_resolves_to_measure_kernel(self):
        # the L1/Lp kernels closed the measure-eligibility gap: a
        # non-linf BestFit/WorstFit now resolves to a measure-qualified
        # policy spec instead of silently falling back to classic
        assert fast_policy_for(BestFit(measure="l1")) == ("best_fit:l1", 0)
        assert fast_policy_for(WorstFit(measure="lp")) == ("worst_fit:lp:2.0", 0)
        assert fast_policy_for(BestFit(measure="lp", p=3.0)) == ("best_fit:lp:3.0", 0)
        assert fast_policy_for(BestFit()) == ("best_fit", 0)

    def test_subclass_is_ineligible(self):
        # subclasses inherit fast_kernel but are not registered by class
        assert fast_policy_for(QuantumAwareMoveToFront(quantum=5.0)) is None

    def test_foreign_object_is_ineligible(self):
        class NotAnAlgorithm:
            pass

        assert fast_policy_for(NotAnAlgorithm()) is None


# ----------------------------------------------------------------------
# single-use contract (satellite d: both engines reject run() reuse)
# ----------------------------------------------------------------------
class TestSingleUse:
    def test_fast_engine_is_single_use(self, tiny_instance):
        eng = FastEngine(tiny_instance, "first_fit")
        eng.run()
        with pytest.raises(AlgorithmError):
            eng.run()

    def test_classic_engine_is_single_use(self, tiny_instance):
        # regression pairing: the classic engine enforces the identical
        # contract, so a caller can swap engines without a behaviour gap
        eng = Engine(tiny_instance, make_algorithm("first_fit"))
        eng.run()
        with pytest.raises(AlgorithmError):
            eng.run()


# ----------------------------------------------------------------------
# the replay itself: equality on targeted shapes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestReplayEquality:
    def test_matches_classic_on_fixture(self, backend, uniform_small, paper_algorithm_name):
        kwargs = {"seed": 0} if paper_algorithm_name == "random_fit" else {}
        classic = run(make_algorithm(paper_algorithm_name, **kwargs), uniform_small)
        fast = FastEngine(uniform_small, paper_algorithm_name, backend=backend).run()
        assert fast.assignment == classic.assignment
        assert fast.cost == pytest.approx(classic.cost, rel=1e-12)
        assert fast.algorithm == paper_algorithm_name

    def test_slot_growth_beyond_initial_capacity(self, backend):
        # 150 simultaneous unit items force 150 open bins: the slot
        # arrays must double past their initial 64 rows mid-run
        items = [Item(0.0, 5.0, np.array([1.0]), uid) for uid in range(150)]
        inst = Instance(items)
        fast = FastEngine(inst, "first_fit", backend=backend).run()
        classic = run("first_fit", inst)
        assert fast.num_bins == 150
        assert fast.assignment == classic.assignment

    def test_tombstone_compaction(self, backend):
        # 200 strictly sequential items: every bin closes before the next
        # opens, so the dead-slot compaction sweep must fire repeatedly
        items = [
            Item(float(2 * k), float(2 * k + 1), np.array([1.0]), k)
            for k in range(200)
        ]
        inst = Instance(items)
        for policy in sorted(FAST_POLICIES):
            fast = FastEngine(inst, policy, backend=backend).run()
            classic = run(
                make_algorithm(policy, **({"seed": 0} if policy == "random_fit" else {})),
                inst,
            )
            assert fast.assignment == classic.assignment, policy

    def test_churny_instance_all_policies(self, backend, churny_instance):
        for policy in sorted(FAST_POLICIES):
            kwargs = {"seed": 0} if policy == "random_fit" else {}
            classic = run(make_algorithm(policy, **kwargs), churny_instance)
            fast = fast_simulate(policy, churny_instance, backend=backend)
            assert fast.assignment == classic.assignment, policy


# ----------------------------------------------------------------------
# collector counters
# ----------------------------------------------------------------------
class TestCollectorCounters:
    def test_deterministic_counters_match_classic(self, churny_instance):
        for policy in ("move_to_front", "first_fit", "next_fit", "best_fit"):
            col_c = StatsCollector()
            run(make_algorithm(policy), churny_instance, collector=col_c)
            for backend in BACKENDS:
                col_f = StatsCollector()
                FastEngine(
                    churny_instance, policy, collector=col_f, backend=backend
                ).run()
                c, f = col_c.snapshot(), col_f.snapshot()
                for field in (
                    "runs", "events", "arrivals", "departures", "bins_opened",
                    "bins_closed", "peak_open_bins", "candidate_scans", "fit_checks",
                ):
                    assert getattr(f, field) == getattr(c, field), (policy, backend, field)

    def test_fastpath_runs_counter(self, tiny_instance):
        col = StatsCollector()
        FastEngine(tiny_instance, "first_fit", collector=col).run()
        FastEngine(tiny_instance, "next_fit", collector=col).run()
        snap = col.snapshot()
        assert snap.fastpath_runs == 2
        assert snap.runs == 2
        # a classic run never bumps it
        col2 = StatsCollector()
        run("first_fit", tiny_instance, collector=col2)
        assert col2.snapshot().fastpath_runs == 0


# ----------------------------------------------------------------------
# integration: simulate / runner / parallel sweep
# ----------------------------------------------------------------------
class TestIntegration:
    def test_simulate_fast_flag_routes_and_matches(self, uniform_small):
        classic = simulate(make_algorithm("move_to_front"), uniform_small)
        col = StatsCollector()
        fast = simulate(
            make_algorithm("move_to_front"), uniform_small, collector=col, fast=True
        )
        assert fast.assignment == classic.assignment
        assert col.snapshot().fastpath_runs == 1

    def test_simulate_fast_falls_back_for_ineligible_algorithm(self, uniform_small):
        from repro.simulation.engine import reset_fallback_warnings

        reset_fallback_warnings()
        # an unregistered subclass (quantum billing changes decisions)
        algo = make_algorithm("quantum_aware_move_to_front", quantum=5.0)
        col = StatsCollector()
        with pytest.warns(RuntimeWarning, match="no fast kernel"):
            fast = simulate(algo, uniform_small, collector=col, fast=True)
        classic = simulate(
            make_algorithm("quantum_aware_move_to_front", quantum=5.0), uniform_small
        )
        assert fast.assignment == classic.assignment
        assert col.snapshot().fastpath_runs == 0

    def test_simulate_fast_uses_measure_kernel(self, uniform_small):
        # regression for the measure-eligibility gap: BestFit(l1) now
        # runs on the fast engine and matches classic bit-for-bit
        col = StatsCollector()
        fast = simulate(BestFit(measure="l1"), uniform_small, collector=col, fast=True)
        classic = simulate(BestFit(measure="l1"), uniform_small)
        assert fast.assignment == classic.assignment
        assert col.snapshot().fastpath_runs == 1
        assert col.fastpath_fallbacks == 0

    def test_simulate_fast_falls_back_with_observers(self, uniform_small):
        from repro.simulation.engine import reset_fallback_warnings
        from repro.simulation.instrumentation import LeaderTracker

        reset_fallback_warnings()
        col = StatsCollector()
        with pytest.warns(RuntimeWarning, match="observers requested"):
            packing = simulate(make_algorithm("move_to_front"), uniform_small,
                               observers=[LeaderTracker()], collector=col, fast=True)
        # observers force the classic engine; result still correct
        assert col.snapshot().fastpath_runs == 0
        assert packing.assignment == run("move_to_front", uniform_small).assignment

    def test_run_engine_parameter(self, uniform_small):
        classic = run("first_fit", uniform_small)
        fast = run("first_fit", uniform_small, engine="fast")
        assert fast.assignment == classic.assignment
        with pytest.raises(ConfigurationError):
            run("first_fit", uniform_small, engine="warp")

    def test_run_many_engine_parameter(self, uniform_small, tiny_instance):
        batch = [tiny_instance, uniform_small]
        classic = run_many("move_to_front", batch)
        fast = run_many("move_to_front", batch, engine="fast")
        assert [p.assignment for p in fast] == [p.assignment for p in classic]

    def test_parallel_sweep_fast_serial(self, uniform_small, tiny_instance):
        insts = [tiny_instance, uniform_small]
        classic = parallel_sweep(["first_fit", "best_fit"], insts, processes=0)
        fast = parallel_sweep(["first_fit", "best_fit"], insts, processes=0,
                              engine="fast")
        for name in ("first_fit", "best_fit"):
            assert [u.cost for u in fast[name]] == [u.cost for u in classic[name]]
            assert [u.num_bins for u in fast[name]] == [u.num_bins for u in classic[name]]

    def test_parallel_sweep_fast_workers_chunked(self, uniform_small, tiny_instance):
        insts = [tiny_instance, uniform_small] * 3
        classic = parallel_sweep(["first_fit"], insts, processes=0)
        fast = parallel_sweep(["first_fit"], insts, processes=2, chunksize=2,
                              collect_stats=True, engine="fast")
        assert [u.cost for u in fast["first_fit"]] == [u.cost for u in classic["first_fit"]]
        assert all(u.stats is not None and u.stats.fastpath_runs == 1
                   for u in fast["first_fit"])

    def test_simulate_unit_and_chunk_accept_engine_payloads(self, tiny_instance):
        payload = ("first_fit", {}, 0, tiny_instance.to_dict(), 1.0, True, "fast")
        unit = simulate_unit(payload)
        assert unit.stats.fastpath_runs == 1
        legacy = simulate_unit(("first_fit", {}, 0, tiny_instance.to_dict(), 1.0))
        assert legacy.cost == unit.cost
        chunk = simulate_chunk([payload, payload])
        assert [u.cost for u in chunk] == [unit.cost, unit.cost]


# ----------------------------------------------------------------------
# bench + CLI surfaces
# ----------------------------------------------------------------------
class TestBenchAndCli:
    def test_fastpath_scenario_record_shape(self):
        scenario = FASTPATH_SMOKE_SCENARIOS[0]
        record = run_fastpath_scenario(
            scenario, algorithms=("first_fit", "next_fit"), repeats=1
        )
        assert record["name"] == scenario.name
        assert set(record["results"]) == {"first_fit", "next_fit"}
        for res in record["results"].values():
            assert res["identical"] is True
            assert res["classic_s"] > 0
            for backend in record["backends"]:
                assert res[f"fast_{backend}_s"] > 0
                assert res[f"speedup_{backend}"] > 0
        assert record["totals"]["identical"] is True

    def test_merge_fastpath_nests_without_clobbering(self):
        core = {"schema": "repro-bench/v1", "scenarios": [1, 2]}
        merged = merge_fastpath(core, {"schema": "repro-bench-fastpath/v1"})
        assert merged["schema"] == "repro-bench/v1"
        assert merged["scenarios"] == [1, 2]
        assert merged["fastpath"]["schema"] == "repro-bench-fastpath/v1"
        assert "fastpath" not in core  # input not mutated

    def test_cli_run_engine_flag(self, tmp_path, capsys):
        path = str(tmp_path / "inst.json")
        assert main(["generate", path, "--d", "2", "--n", "30"]) == 0
        assert main(["run", path, "--engine", "fast", "--validate"]) == 0
        out_fast = capsys.readouterr().out
        assert "fast engine" in out_fast
        assert main(["run", path, "--engine", "classic"]) == 0

    def test_cli_bench_fastpath_smoke_merges(self, tmp_path, capsys):
        out = str(tmp_path / "bench.json")
        assert main(["bench", "--suite", "smoke", "--repeats", "1",
                     "--output", out]) == 0
        assert main(["bench", "--suite", "fastpath-smoke", "--repeats", "1",
                     "--output", out]) == 0
        payload = json.loads(Path(out).read_text())
        assert payload["schema"] == "repro-bench/v1"
        fp = payload["fastpath"]
        assert fp["schema"] == "repro-bench-fastpath/v1"
        assert fp["suite"] == "fastpath-smoke"
        assert fp["headline"]["identical"] is True
        # a core re-run must keep the nested fastpath payload
        assert main(["bench", "--suite", "smoke", "--repeats", "1",
                     "--output", out]) == 0
        payload = json.loads(Path(out).read_text())
        assert payload["fastpath"]["suite"] == "fastpath-smoke"
        capsys.readouterr()


class TestIneligibilityGap:
    """Regression for the silent-eligibility gap (ROADMAP item 2).

    A policy with no fast kernel — an unregistered subclass whose
    options change *decisions*, not just bookkeeping — must fall back
    to the classic engine *audibly*: one RuntimeWarning per distinct
    cause and a ``fastpath_fallbacks`` counter bump on every
    occurrence.  Before the fix, the batch paths degraded silently.
    (``BestFit``/``WorstFit`` measure variants, the original specimens
    here, gained real L1/Lp kernels and are exercised by the
    eligibility tests instead.)
    """

    def setup_method(self):
        from repro.simulation.engine import reset_fallback_warnings

        reset_fallback_warnings()

    def test_reason_names_the_ineligible_class(self):
        from repro.simulation.fastpath import fast_ineligibility_reason

        assert fast_ineligibility_reason(make_algorithm("best_fit")) is None
        assert fast_ineligibility_reason(BestFit(measure="l1")) is None
        assert fast_ineligibility_reason(WorstFit(measure="lp", p=3.0)) is None
        reason = fast_ineligibility_reason(QuantumAwareMoveToFront(quantum=5.0))
        assert reason is not None
        assert "no fast kernel" in reason
        assert "QuantumAwareMoveToFront" in reason

    def test_reason_names_a_cleared_kernel(self):
        # an instance whose decision-changing option cleared the
        # class-level fast_kernel marker keeps its distinct reason
        from repro.simulation.fastpath import fast_ineligibility_reason

        algo = make_algorithm("best_fit")
        algo.fast_kernel = None
        reason = fast_ineligibility_reason(algo)
        assert reason is not None
        assert "no fast kernel" in reason
        assert "decision-changing" in reason

    def test_simulate_fast_warns_and_counts(self, uniform_small):
        col = StatsCollector()
        algo = QuantumAwareMoveToFront(quantum=5.0)
        with pytest.warns(RuntimeWarning, match="no fast kernel"):
            fast = simulate(algo, uniform_small, collector=col, fast=True)
        assert col.fastpath_fallbacks == 1
        classic = simulate(QuantumAwareMoveToFront(quantum=5.0), uniform_small)
        assert dict(fast.assignment) == dict(classic.assignment)

    def test_batch_runner_units_warn_and_count(self, uniform_small):
        from repro.simulation.batch import BatchRunner

        with pytest.warns(RuntimeWarning, match="no fast kernel"):
            units = BatchRunner(uniform_small).run_units(
                [("quantum_aware_move_to_front", {"quantum": 5.0})],
                collect_stats=True,
            )
        assert units[0].stats.fastpath_fallbacks == 1

    def test_batch_run_many_counts_every_run_warns_once(
        self, uniform_small, tiny_instance
    ):
        import warnings

        from repro.simulation.batch import batch_run_many

        col = StatsCollector()
        with pytest.warns(RuntimeWarning, match="no fast kernel"):
            batch_run_many(
                QuantumAwareMoveToFront(quantum=5.0),
                [uniform_small, tiny_instance],
                collector=col,
            )
        assert col.fastpath_fallbacks == 2
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a repeat warning would raise
            batch_run_many(
                QuantumAwareMoveToFront(quantum=5.0),
                [uniform_small, tiny_instance],
                collector=col,
            )
        assert col.fastpath_fallbacks == 4


# ----------------------------------------------------------------------
# L1/Lp measure kernels (the measure-eligibility gap, closed)
# ----------------------------------------------------------------------
class TestMeasureKernels:
    MEASURE_SPECS = (
        ("best_fit:l1", lambda: BestFit(measure="l1")),
        ("best_fit:lp:3.0", lambda: BestFit(measure="lp", p=3.0)),
        ("worst_fit:l1", lambda: WorstFit(measure="l1")),
        ("worst_fit:lp:2.0", lambda: WorstFit(measure="lp", p=2.0)),
    )

    def test_parse_policy_spec_accepts_measure_specs(self):
        from repro.simulation.fastpath import parse_policy_spec

        assert parse_policy_spec("best_fit") == ("best_fit", "linf", None)
        assert parse_policy_spec("best_fit:l1") == ("best_fit", "l1", None)
        assert parse_policy_spec("worst_fit:lp:3.0") == ("worst_fit", "lp", 3.0)
        assert parse_policy_spec("best_fit:linf") == ("best_fit", "linf", None)

    def test_parse_policy_spec_rejects_malformed(self):
        from repro.simulation.fastpath import parse_policy_spec

        for bad in (
            "harmonic",            # unknown base policy
            "first_fit:l1",        # no measure knob on this kernel
            "best_fit:l7",         # unknown measure
            "best_fit:lp",         # missing exponent
            "best_fit:lp:x",       # non-float exponent
            "best_fit:lp:0.5",     # p < 1 is not a norm
            "best_fit:lp:nan",     # NaN exponent
        ):
            with pytest.raises(ConfigurationError):
                parse_policy_spec(bad)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_measure_kernels_match_classic(self, backend, churny_instance):
        for spec, factory in self.MEASURE_SPECS:
            classic = simulate(factory(), churny_instance)
            fast = FastEngine(churny_instance, spec, backend=backend).run()
            assert dict(fast.assignment) == dict(classic.assignment), (spec, backend)
            assert fast.algorithm == classic.algorithm

    def test_lp_p1_runs_the_l1_kernel_bitwise(self, churny_instance):
        # lp with p = 1 normalises to the l1 kernel; both replays must
        # produce the same assignment as the classic lp(p=1) algorithm
        classic = simulate(BestFit(measure="lp", p=1.0), churny_instance)
        via_lp = FastEngine(churny_instance, "best_fit:lp:1.0").run()
        via_l1 = FastEngine(churny_instance, "best_fit:l1").run()
        assert dict(via_lp.assignment) == dict(classic.assignment)
        assert dict(via_lp.assignment) == dict(via_l1.assignment)

    def test_lp_inf_runs_the_linf_kernel(self, churny_instance):
        classic = simulate(BestFit(measure="lp", p=float("inf")), churny_instance)
        fast = FastEngine(churny_instance, "best_fit:lp:inf").run()
        assert dict(fast.assignment) == dict(classic.assignment)

    def test_measure_variant_no_longer_counts_as_fallback(self, uniform_small):
        # before the L1/Lp kernels, this config bumped fastpath_fallbacks
        col = StatsCollector()
        simulate(BestFit(measure="l1"), uniform_small, collector=col, fast=True)
        assert col.fastpath_fallbacks == 0
        assert col.snapshot().fastpath_runs == 1


# ----------------------------------------------------------------------
# trial-lockstep vectorized tier
# ----------------------------------------------------------------------
class TestLockstepTrials:
    SEEDS = (0, 1, 2, 5, 11, 42)

    def test_lockstep_matches_per_seed_runs(self, churny_instance):
        vec = FastEngine(churny_instance, "random_fit", backend="vectorized")
        lockstep = vec.run_trials(self.SEEDS)
        assert len(lockstep) == len(self.SEEDS)
        for seed, got in zip(self.SEEDS, lockstep):
            single = FastEngine(
                churny_instance, "random_fit", seed=seed, backend="numpy"
            ).run_assignment()
            classic = simulate(
                make_algorithm("random_fit", seed=seed), churny_instance
            )
            assert got == single, seed
            assert got == dict(classic.assignment), seed

    def test_lockstep_trials_differ_across_seeds(self, churny_instance):
        # distinct per-trial Generator streams: seeds must not collapse
        # onto one shared draw sequence
        out = FastEngine(churny_instance, "random_fit", backend="vectorized").run_trials(
            (0, 1)
        )
        assert out[0] != out[1]

    def test_numpy_backend_run_trials_loops_sequentially(self, churny_instance):
        npy = FastEngine(churny_instance, "random_fit", backend="numpy")
        vec = FastEngine(churny_instance, "random_fit", backend="vectorized")
        assert npy.run_trials(self.SEEDS) == vec.run_trials(self.SEEDS)

    def test_run_trials_rejects_non_random_policies(self, churny_instance):
        eng = FastEngine(churny_instance, "first_fit", backend="vectorized")
        with pytest.raises(ConfigurationError):
            eng.run_trials((0, 1))

    def test_lockstep_slot_growth(self):
        # 150 simultaneous unit items force every trial's shared slot
        # capacity to double past the initial allocation mid-run
        items = [Item(0.0, 5.0, np.array([1.0]), uid) for uid in range(150)]
        inst = Instance(items)
        out = FastEngine(inst, "random_fit", backend="vectorized").run_trials((0, 3))
        for seed, got in zip((0, 3), out):
            single = FastEngine(inst, "random_fit", seed=seed).run_assignment()
            assert got == single

    def test_lockstep_compaction(self):
        # strictly sequential items: bins die continuously, exercising
        # the per-trial stable compaction path
        items = [
            Item(float(2 * k), float(2 * k + 1), np.array([1.0]), k)
            for k in range(120)
        ]
        inst = Instance(items)
        out = FastEngine(inst, "random_fit", backend="vectorized").run_trials((0, 7))
        for seed, got in zip((0, 7), out):
            single = FastEngine(inst, "random_fit", seed=seed).run_assignment()
            assert got == single

    def test_choose_trials_backend(self, churny_instance, monkeypatch):
        from repro.simulation.fastpath import choose_trials_backend

        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert choose_trials_backend(churny_instance, 8) == "vectorized"
        assert choose_trials_backend(churny_instance, 2) == "vectorized"
        assert choose_trials_backend(churny_instance, 1) != "vectorized"
        monkeypatch.setenv(BACKEND_ENV, "python")
        assert choose_trials_backend(churny_instance, 8) == "python"

    def test_batch_runner_auto_selects_lockstep(self, churny_instance, monkeypatch):
        from repro.simulation.batch import BatchRunner

        monkeypatch.delenv(BACKEND_ENV, raising=False)
        seeds = list(range(6))
        auto = BatchRunner(churny_instance).run_trials(seeds)
        forced_seq = BatchRunner(churny_instance).run_trials(seeds, vectorized=False)
        assert [(u.cost, u.num_bins) for u in auto] == \
            [(u.cost, u.num_bins) for u in forced_seq]

    def test_batch_runner_vectorized_param_forces_lockstep(self, churny_instance):
        from repro.simulation.batch import BatchRunner

        seeds = list(range(4))
        vec = BatchRunner(churny_instance).run_trials(seeds, vectorized=True)
        seq = BatchRunner(churny_instance).run_trials(seeds, vectorized=False)
        assert [(u.cost, u.num_bins) for u in vec] == \
            [(u.cost, u.num_bins) for u in seq]


# ----------------------------------------------------------------------
# seed validation (the raw-TypeError bugfix)
# ----------------------------------------------------------------------
class TestSeedValidation:
    def test_random_fit_rejects_non_integer_seed(self):
        from repro.algorithms.random_fit import RandomFit

        for bad in (None, 1.5, "7"):
            with pytest.raises(ConfigurationError):
                RandomFit(seed=bad)

    def test_random_fit_accepts_index_like_seed(self):
        from repro.algorithms.random_fit import RandomFit

        assert RandomFit(seed=np.int64(9)).seed == 9
        assert RandomFit(seed=True).seed == 1  # operator.index semantics

    def test_fast_policy_for_rejects_non_integer_seed_attr(self):
        algo = make_algorithm("random_fit", seed=3)
        algo.seed = 2.5  # simulate post-construction corruption
        assert fast_policy_for(algo) is None
        from repro.simulation.fastpath import fast_ineligibility_reason

        reason = fast_ineligibility_reason(algo)
        assert reason is not None and "seed" in reason


# ----------------------------------------------------------------------
# the numba JIT tier: selection, graceful degradation, warn-once
# ----------------------------------------------------------------------
class TestNumbaTier:
    @pytest.fixture(autouse=True)
    def _fresh_numba_state(self, monkeypatch):
        from repro.simulation import kernels_numba as knl
        from repro.simulation.fastpath import reset_backend_fallback_warnings

        # host-level env pins (e.g. a CI leg exporting
        # REPRO_NUMBA_DISABLE=1) must not leak into these tests
        monkeypatch.delenv(knl.DISABLE_ENV, raising=False)
        monkeypatch.delenv(knl.PYFUNC_ENV, raising=False)
        knl.reset_state()
        reset_backend_fallback_warnings()
        yield
        knl.reset_state()
        reset_backend_fallback_warnings()

    def test_disabled_numba_not_listed(self, monkeypatch):
        from repro.simulation import kernels_numba as knl

        monkeypatch.setenv(knl.DISABLE_ENV, "1")
        assert "numba" not in available_backends()

    def test_env_request_degrades_with_one_warning(self, monkeypatch):
        """``REPRO_FASTPATH_BACKEND=numba`` on a numba-less host must
        degrade to numpy with a once-per-cause RuntimeWarning — not
        raise, and not warn again on the next resolution."""
        import warnings as _warnings

        from repro.simulation import kernels_numba as knl

        monkeypatch.setenv(knl.DISABLE_ENV, "1")
        monkeypatch.setenv(BACKEND_ENV, "numba")
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert default_backend() == "numpy"
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert default_backend() == "numpy"  # warn-once: now silent

    def test_explicit_backend_degrades_and_names_reason(
        self, monkeypatch, tiny_instance
    ):
        from repro.simulation import kernels_numba as knl
        from repro.simulation.fastpath import backend_ineligibility_reason

        monkeypatch.setenv(knl.DISABLE_ENV, "1")
        with pytest.warns(RuntimeWarning, match="falling back"):
            engine = FastEngine(tiny_instance, "first_fit", backend="numba")
        assert engine.backend == "numpy"
        reason = backend_ineligibility_reason("numba")
        assert reason is not None and "numba" in reason

    def test_backend_ineligibility_reason_rejects_unknown(self):
        from repro.simulation.fastpath import backend_ineligibility_reason

        with pytest.raises(ConfigurationError):
            backend_ineligibility_reason("fortran")

    def test_pyfunc_mode_runs_the_kernel_end_to_end(
        self, monkeypatch, churny_instance
    ):
        """``REPRO_NUMBA_PYFUNC=1`` drives the numba kernel uncompiled:
        the whole dispatch path is exercised (and must stay
        bit-identical) even on hosts without numba installed."""
        from repro.simulation import kernels_numba as knl

        monkeypatch.setenv(knl.PYFUNC_ENV, "1")
        assert "numba" in available_backends()
        for spec in ("best_fit", "next_fit", "best_fit:lp:2.0"):
            fast = FastEngine(churny_instance, spec, backend="numba").run()
            algo = (
                make_algorithm("best_fit", measure="lp", p=2.0)
                if spec == "best_fit:lp:2.0"
                else make_algorithm(spec)
            )
            classic = run(algo, churny_instance)
            assert fast.assignment == classic.assignment, spec

    def test_fastpath_backend_recorded_and_zeroed(
        self, monkeypatch, churny_instance
    ):
        from repro.simulation import kernels_numba as knl

        monkeypatch.setenv(knl.PYFUNC_ENV, "1")
        col = StatsCollector()
        FastEngine(
            churny_instance, "first_fit", backend="numba", collector=col
        ).run()
        stats = col.snapshot()
        assert stats.fastpath_backend == "numba"
        # an execution fact, not a result: zeroed from the deterministic
        # part so trajectories stay backend-independent
        assert stats.deterministic_part().fastpath_backend == ""

    def test_trials_backend_env_overrides(self, monkeypatch, churny_instance):
        from repro.simulation.fastpath import (
            TRIALS_BACKEND_ENV,
            choose_trials_backend,
        )

        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.setenv(TRIALS_BACKEND_ENV, "python")
        assert choose_trials_backend(churny_instance.n, 8) == "python"
        monkeypatch.setenv(TRIALS_BACKEND_ENV, "fortran")
        with pytest.raises(ConfigurationError):
            choose_trials_backend(churny_instance.n, 8)

    def test_trials_backend_env_numba_degrades(
        self, monkeypatch, churny_instance
    ):
        from repro.simulation import kernels_numba as knl
        from repro.simulation.fastpath import (
            TRIALS_BACKEND_ENV,
            choose_trials_backend,
        )

        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.setenv(knl.DISABLE_ENV, "1")
        monkeypatch.setenv(TRIALS_BACKEND_ENV, "numba")
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert choose_trials_backend(churny_instance.n, 8) == "numpy"

    def test_batch_runner_trials_backend_param(
        self, monkeypatch, churny_instance
    ):
        from repro.simulation.batch import BatchRunner

        seeds = [0, 1, 2]
        baseline = BatchRunner(churny_instance).run_trials(
            seeds, vectorized=False
        )
        pinned = BatchRunner(
            churny_instance, trials_backend="vectorized"
        ).run_trials(seeds)
        assert [(u.cost, u.num_bins) for u in pinned] == \
            [(u.cost, u.num_bins) for u in baseline]
        # per-call param wins over the runner-level pin
        per_call = BatchRunner(
            churny_instance, trials_backend="python"
        ).run_trials(seeds, trials_backend="vectorized")
        assert [(u.cost, u.num_bins) for u in per_call] == \
            [(u.cost, u.num_bins) for u in baseline]

    def test_numba_suite_writes_honest_stub_when_missing(self, monkeypatch):
        from repro.observability.bench import run_numba_suite
        from repro.simulation import kernels_numba as knl

        monkeypatch.setenv(knl.DISABLE_ENV, "1")
        payload = run_numba_suite(repeats=1)
        assert payload["available"] is False
        assert "numba" in payload["reason"]
        assert "scenarios" not in payload  # no fabricated timings
