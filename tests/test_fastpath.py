"""Unit tests for the flat-array fast-path engine (repro.simulation.fastpath).

The bit-identity contract itself is exercised exhaustively by
``tests/test_fastpath_differential.py`` (corpus) and
``tests/test_fastpath_properties.py`` (Hypothesis); this module covers
the machinery around it: backend selection, eligibility resolution, the
single-use contract, collector counters, slot growth/compaction, and the
runner / parallel-sweep / bench / CLI integration points.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.algorithms.best_fit import BestFit, WorstFit
from repro.algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from repro.cli import main
from repro.core.errors import AlgorithmError, ConfigurationError
from repro.core.instance import Instance
from repro.core.items import Item
from repro.observability.bench import (
    FASTPATH_SMOKE_SCENARIOS,
    merge_fastpath,
    run_fastpath_scenario,
)
from repro.observability.stats import StatsCollector
from repro.simulation.billing import QuantumAwareMoveToFront
from repro.simulation.engine import Engine, simulate
from repro.simulation.fastpath import (
    BACKEND_ENV,
    FAST_POLICIES,
    FastEngine,
    available_backends,
    default_backend,
    fast_policy_for,
    fast_simulate,
)
from repro.simulation.parallel import parallel_sweep, simulate_chunk, simulate_unit
from repro.simulation.runner import run, run_many
from repro.workloads.uniform import UniformWorkload

BACKENDS = available_backends()


@pytest.fixture
def churny_instance():
    """Short durations + tight bins: lots of departures and bin reuse."""
    return UniformWorkload(d=2, n=80, mu=4, T=30, B=6).sample_seeded(11)


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_numpy_preferred_when_available(self):
        assert BACKENDS[0] == "numpy"
        assert "python" in BACKENDS

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        assert default_backend() == "python"
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert default_backend() == "numpy"

    def test_env_override_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "fortran")
        with pytest.raises(ConfigurationError):
            default_backend()

    def test_explicit_backend_rejects_unknown(self, tiny_instance):
        with pytest.raises(ConfigurationError):
            FastEngine(tiny_instance, "first_fit", backend="fortran")

    def test_unknown_policy_rejected(self, tiny_instance):
        with pytest.raises(ConfigurationError):
            FastEngine(tiny_instance, "harmonic")


# ----------------------------------------------------------------------
# eligibility resolution
# ----------------------------------------------------------------------
class TestFastPolicyFor:
    def test_registry_names(self):
        for policy in PAPER_ALGORITHMS:
            assert fast_policy_for(policy) == (policy, 0)
        assert fast_policy_for("not_a_policy") is None

    def test_stock_objects_resolve(self):
        for policy in PAPER_ALGORITHMS:
            kwargs = {"seed": 0} if policy == "random_fit" else {}
            assert fast_policy_for(make_algorithm(policy, **kwargs)) == (policy, 0)

    def test_random_fit_carries_seed(self):
        assert fast_policy_for(make_algorithm("random_fit", seed=7)) == ("random_fit", 7)

    def test_nondefault_measure_is_ineligible(self):
        # BestFit(l1) ranks candidates differently from the linf kernel
        assert fast_policy_for(BestFit(measure="l1")) is None
        assert fast_policy_for(WorstFit(measure="lp")) is None
        assert fast_policy_for(BestFit()) == ("best_fit", 0)

    def test_subclass_is_ineligible(self):
        # subclasses inherit fast_kernel but are not registered by class
        assert fast_policy_for(QuantumAwareMoveToFront(quantum=5.0)) is None

    def test_foreign_object_is_ineligible(self):
        class NotAnAlgorithm:
            pass

        assert fast_policy_for(NotAnAlgorithm()) is None


# ----------------------------------------------------------------------
# single-use contract (satellite d: both engines reject run() reuse)
# ----------------------------------------------------------------------
class TestSingleUse:
    def test_fast_engine_is_single_use(self, tiny_instance):
        eng = FastEngine(tiny_instance, "first_fit")
        eng.run()
        with pytest.raises(AlgorithmError):
            eng.run()

    def test_classic_engine_is_single_use(self, tiny_instance):
        # regression pairing: the classic engine enforces the identical
        # contract, so a caller can swap engines without a behaviour gap
        eng = Engine(tiny_instance, make_algorithm("first_fit"))
        eng.run()
        with pytest.raises(AlgorithmError):
            eng.run()


# ----------------------------------------------------------------------
# the replay itself: equality on targeted shapes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestReplayEquality:
    def test_matches_classic_on_fixture(self, backend, uniform_small, paper_algorithm_name):
        kwargs = {"seed": 0} if paper_algorithm_name == "random_fit" else {}
        classic = run(make_algorithm(paper_algorithm_name, **kwargs), uniform_small)
        fast = FastEngine(uniform_small, paper_algorithm_name, backend=backend).run()
        assert fast.assignment == classic.assignment
        assert fast.cost == pytest.approx(classic.cost, rel=1e-12)
        assert fast.algorithm == paper_algorithm_name

    def test_slot_growth_beyond_initial_capacity(self, backend):
        # 150 simultaneous unit items force 150 open bins: the slot
        # arrays must double past their initial 64 rows mid-run
        items = [Item(0.0, 5.0, np.array([1.0]), uid) for uid in range(150)]
        inst = Instance(items)
        fast = FastEngine(inst, "first_fit", backend=backend).run()
        classic = run("first_fit", inst)
        assert fast.num_bins == 150
        assert fast.assignment == classic.assignment

    def test_tombstone_compaction(self, backend):
        # 200 strictly sequential items: every bin closes before the next
        # opens, so the dead-slot compaction sweep must fire repeatedly
        items = [
            Item(float(2 * k), float(2 * k + 1), np.array([1.0]), k)
            for k in range(200)
        ]
        inst = Instance(items)
        for policy in sorted(FAST_POLICIES):
            fast = FastEngine(inst, policy, backend=backend).run()
            classic = run(
                make_algorithm(policy, **({"seed": 0} if policy == "random_fit" else {})),
                inst,
            )
            assert fast.assignment == classic.assignment, policy

    def test_churny_instance_all_policies(self, backend, churny_instance):
        for policy in sorted(FAST_POLICIES):
            kwargs = {"seed": 0} if policy == "random_fit" else {}
            classic = run(make_algorithm(policy, **kwargs), churny_instance)
            fast = fast_simulate(policy, churny_instance, backend=backend)
            assert fast.assignment == classic.assignment, policy


# ----------------------------------------------------------------------
# collector counters
# ----------------------------------------------------------------------
class TestCollectorCounters:
    def test_deterministic_counters_match_classic(self, churny_instance):
        for policy in ("move_to_front", "first_fit", "next_fit", "best_fit"):
            col_c = StatsCollector()
            run(make_algorithm(policy), churny_instance, collector=col_c)
            for backend in BACKENDS:
                col_f = StatsCollector()
                FastEngine(
                    churny_instance, policy, collector=col_f, backend=backend
                ).run()
                c, f = col_c.snapshot(), col_f.snapshot()
                for field in (
                    "runs", "events", "arrivals", "departures", "bins_opened",
                    "bins_closed", "peak_open_bins", "candidate_scans", "fit_checks",
                ):
                    assert getattr(f, field) == getattr(c, field), (policy, backend, field)

    def test_fastpath_runs_counter(self, tiny_instance):
        col = StatsCollector()
        FastEngine(tiny_instance, "first_fit", collector=col).run()
        FastEngine(tiny_instance, "next_fit", collector=col).run()
        snap = col.snapshot()
        assert snap.fastpath_runs == 2
        assert snap.runs == 2
        # a classic run never bumps it
        col2 = StatsCollector()
        run("first_fit", tiny_instance, collector=col2)
        assert col2.snapshot().fastpath_runs == 0


# ----------------------------------------------------------------------
# integration: simulate / runner / parallel sweep
# ----------------------------------------------------------------------
class TestIntegration:
    def test_simulate_fast_flag_routes_and_matches(self, uniform_small):
        classic = simulate(make_algorithm("move_to_front"), uniform_small)
        col = StatsCollector()
        fast = simulate(
            make_algorithm("move_to_front"), uniform_small, collector=col, fast=True
        )
        assert fast.assignment == classic.assignment
        assert col.snapshot().fastpath_runs == 1

    def test_simulate_fast_falls_back_for_ineligible_algorithm(self, uniform_small):
        algo = BestFit(measure="l1")  # no fast kernel for the l1 measure
        col = StatsCollector()
        fast = simulate(algo, uniform_small, collector=col, fast=True)
        classic = simulate(BestFit(measure="l1"), uniform_small)
        assert fast.assignment == classic.assignment
        assert col.snapshot().fastpath_runs == 0

    def test_simulate_fast_falls_back_with_observers(self, uniform_small):
        from repro.simulation.instrumentation import LeaderTracker

        col = StatsCollector()
        packing = simulate(make_algorithm("move_to_front"), uniform_small,
                           observers=[LeaderTracker()], collector=col, fast=True)
        # observers force the classic engine; result still correct
        assert col.snapshot().fastpath_runs == 0
        assert packing.assignment == run("move_to_front", uniform_small).assignment

    def test_run_engine_parameter(self, uniform_small):
        classic = run("first_fit", uniform_small)
        fast = run("first_fit", uniform_small, engine="fast")
        assert fast.assignment == classic.assignment
        with pytest.raises(ConfigurationError):
            run("first_fit", uniform_small, engine="warp")

    def test_run_many_engine_parameter(self, uniform_small, tiny_instance):
        batch = [tiny_instance, uniform_small]
        classic = run_many("move_to_front", batch)
        fast = run_many("move_to_front", batch, engine="fast")
        assert [p.assignment for p in fast] == [p.assignment for p in classic]

    def test_parallel_sweep_fast_serial(self, uniform_small, tiny_instance):
        insts = [tiny_instance, uniform_small]
        classic = parallel_sweep(["first_fit", "best_fit"], insts, processes=0)
        fast = parallel_sweep(["first_fit", "best_fit"], insts, processes=0,
                              engine="fast")
        for name in ("first_fit", "best_fit"):
            assert [u.cost for u in fast[name]] == [u.cost for u in classic[name]]
            assert [u.num_bins for u in fast[name]] == [u.num_bins for u in classic[name]]

    def test_parallel_sweep_fast_workers_chunked(self, uniform_small, tiny_instance):
        insts = [tiny_instance, uniform_small] * 3
        classic = parallel_sweep(["first_fit"], insts, processes=0)
        fast = parallel_sweep(["first_fit"], insts, processes=2, chunksize=2,
                              collect_stats=True, engine="fast")
        assert [u.cost for u in fast["first_fit"]] == [u.cost for u in classic["first_fit"]]
        assert all(u.stats is not None and u.stats.fastpath_runs == 1
                   for u in fast["first_fit"])

    def test_simulate_unit_and_chunk_accept_engine_payloads(self, tiny_instance):
        payload = ("first_fit", {}, 0, tiny_instance.to_dict(), 1.0, True, "fast")
        unit = simulate_unit(payload)
        assert unit.stats.fastpath_runs == 1
        legacy = simulate_unit(("first_fit", {}, 0, tiny_instance.to_dict(), 1.0))
        assert legacy.cost == unit.cost
        chunk = simulate_chunk([payload, payload])
        assert [u.cost for u in chunk] == [unit.cost, unit.cost]


# ----------------------------------------------------------------------
# bench + CLI surfaces
# ----------------------------------------------------------------------
class TestBenchAndCli:
    def test_fastpath_scenario_record_shape(self):
        scenario = FASTPATH_SMOKE_SCENARIOS[0]
        record = run_fastpath_scenario(
            scenario, algorithms=("first_fit", "next_fit"), repeats=1
        )
        assert record["name"] == scenario.name
        assert set(record["results"]) == {"first_fit", "next_fit"}
        for res in record["results"].values():
            assert res["identical"] is True
            assert res["classic_s"] > 0
            for backend in record["backends"]:
                assert res[f"fast_{backend}_s"] > 0
                assert res[f"speedup_{backend}"] > 0
        assert record["totals"]["identical"] is True

    def test_merge_fastpath_nests_without_clobbering(self):
        core = {"schema": "repro-bench/v1", "scenarios": [1, 2]}
        merged = merge_fastpath(core, {"schema": "repro-bench-fastpath/v1"})
        assert merged["schema"] == "repro-bench/v1"
        assert merged["scenarios"] == [1, 2]
        assert merged["fastpath"]["schema"] == "repro-bench-fastpath/v1"
        assert "fastpath" not in core  # input not mutated

    def test_cli_run_engine_flag(self, tmp_path, capsys):
        path = str(tmp_path / "inst.json")
        assert main(["generate", path, "--d", "2", "--n", "30"]) == 0
        assert main(["run", path, "--engine", "fast", "--validate"]) == 0
        out_fast = capsys.readouterr().out
        assert "fast engine" in out_fast
        assert main(["run", path, "--engine", "classic"]) == 0

    def test_cli_bench_fastpath_smoke_merges(self, tmp_path, capsys):
        out = str(tmp_path / "bench.json")
        assert main(["bench", "--suite", "smoke", "--repeats", "1",
                     "--output", out]) == 0
        assert main(["bench", "--suite", "fastpath-smoke", "--repeats", "1",
                     "--output", out]) == 0
        payload = json.loads(open(out).read())
        assert payload["schema"] == "repro-bench/v1"
        fp = payload["fastpath"]
        assert fp["schema"] == "repro-bench-fastpath/v1"
        assert fp["suite"] == "fastpath-smoke"
        assert fp["headline"]["identical"] is True
        # a core re-run must keep the nested fastpath payload
        assert main(["bench", "--suite", "smoke", "--repeats", "1",
                     "--output", out]) == 0
        payload = json.loads(open(out).read())
        assert payload["fastpath"]["suite"] == "fastpath-smoke"
        capsys.readouterr()


class TestIneligibilityGap:
    """Regression for the silent-eligibility gap (ROADMAP item 2).

    A ``BestFit``/``WorstFit`` configured with a non-L-infinity load
    measure has no fast kernel — the measure changes *decisions*, not
    just bookkeeping — so a fast/batch request must fall back to the
    classic engine *audibly*: one RuntimeWarning per distinct cause and
    a ``fastpath_fallbacks`` counter bump on every occurrence.  Before
    the fix, the batch paths degraded silently.
    """

    def setup_method(self):
        from repro.simulation.engine import reset_fallback_warnings

        reset_fallback_warnings()

    def test_reason_names_the_decision_changing_option(self):
        from repro.simulation.fastpath import fast_ineligibility_reason

        assert fast_ineligibility_reason(make_algorithm("best_fit")) is None
        for algo in (BestFit(measure="l1"), WorstFit(measure="lp", p=3.0)):
            reason = fast_ineligibility_reason(algo)
            assert reason is not None
            assert "no fast kernel" in reason
            assert "decision-changing" in reason

    def test_simulate_fast_warns_and_counts(self, uniform_small):
        col = StatsCollector()
        with pytest.warns(RuntimeWarning, match="no fast kernel"):
            fast = simulate(BestFit(measure="l1"), uniform_small,
                            collector=col, fast=True)
        assert col.fastpath_fallbacks == 1
        classic = simulate(BestFit(measure="l1"), uniform_small)
        assert dict(fast.assignment) == dict(classic.assignment)

    def test_batch_runner_units_warn_and_count(self, uniform_small):
        from repro.simulation.batch import BatchRunner

        with pytest.warns(RuntimeWarning, match="no fast kernel"):
            units = BatchRunner(uniform_small).run_units(
                [("best_fit", {"measure": "l1"})], collect_stats=True
            )
        assert units[0].stats.fastpath_fallbacks == 1

    def test_batch_run_many_counts_every_run_warns_once(
        self, uniform_small, tiny_instance
    ):
        import warnings

        from repro.simulation.batch import batch_run_many

        col = StatsCollector()
        with pytest.warns(RuntimeWarning, match="no fast kernel"):
            batch_run_many(
                WorstFit(measure="l1"), [uniform_small, tiny_instance],
                collector=col,
            )
        assert col.fastpath_fallbacks == 2
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a repeat warning would raise
            batch_run_many(
                WorstFit(measure="l1"), [uniform_small, tiny_instance],
                collector=col,
            )
        assert col.fastpath_fallbacks == 4
