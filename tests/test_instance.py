"""Unit tests for repro.core.instance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidInstanceError, InvalidItemError
from repro.core.instance import Instance
from repro.core.intervals import Interval
from repro.core.items import Item


def inst_1d(*triples):
    return Instance.from_tuples([(a, e, [s]) for a, e, s in triples])


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Instance([])

    def test_mixed_dimensions_rejected(self):
        items = [Item(0, 1, np.array([0.5]), 0), Item(0, 1, np.array([0.5, 0.5]), 1)]
        with pytest.raises(InvalidInstanceError):
            Instance(items)

    def test_oversized_item_rejected(self):
        with pytest.raises(InvalidItemError):
            Instance([Item(0, 1, np.array([1.5]), 0)])

    def test_oversized_vs_explicit_capacity(self):
        # size 1.5 is fine under capacity 2
        Instance([Item(0, 1, np.array([1.5]), 0)], capacity=2.0)

    def test_scalar_capacity_broadcast(self):
        inst = Instance([Item(0, 1, np.array([1.0, 1.0]), 0)], capacity=2.0)
        assert np.allclose(inst.capacity, [2.0, 2.0])

    def test_capacity_dim_mismatch_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Instance([Item(0, 1, np.array([0.5, 0.5]), 0)], capacity=[1.0, 1.0, 1.0])

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Instance([Item(0, 1, np.array([0.0]), 0)], capacity=[0.0])

    def test_arrival_order_enforced(self):
        items = [Item(5, 6, np.array([0.1]), 0), Item(0, 1, np.array([0.1]), 1)]
        with pytest.raises(InvalidInstanceError):
            Instance(items)

    def test_from_tuples_sorts_and_assigns_uids(self):
        inst = Instance.from_tuples([(5, 6, 0.1), (0, 1, 0.2), (0, 2, 0.3)])
        assert [it.uid for it in inst] == [0, 1, 2]
        assert [it.arrival for it in inst] == [0, 0, 5]

    def test_from_tuples_stable_at_ties(self):
        inst = Instance.from_tuples([(0, 1, 0.2), (0, 2, 0.3)])
        assert inst[0].size[0] == 0.2  # original order preserved

    def test_len_iter_getitem(self):
        inst = inst_1d((0, 1, 0.1), (0, 2, 0.2))
        assert len(inst) == 2
        assert inst[1].duration == 2.0
        assert sum(1 for _ in inst) == 2


class TestPaperQuantities:
    def test_mu(self):
        inst = inst_1d((0, 1, 0.1), (0, 5, 0.1))
        assert inst.mu == 5.0

    def test_mu_unit_when_equal_durations(self):
        inst = inst_1d((0, 2, 0.1), (1, 3, 0.1))
        assert inst.mu == 1.0

    def test_span_contiguous(self):
        inst = inst_1d((0, 2, 0.1), (1, 4, 0.1))
        assert inst.span == 4.0

    def test_span_with_gap(self):
        inst = inst_1d((0, 1, 0.1), (5, 7, 0.1))
        assert inst.span == 3.0

    def test_horizon(self):
        inst = inst_1d((1, 2, 0.1), (5, 7, 0.1))
        assert inst.horizon == Interval(1, 7)

    def test_total_utilization(self):
        inst = Instance(
            [Item(0, 2, np.array([0.5, 0.2]), 0), Item(0, 3, np.array([0.1, 0.4]), 1)]
        )
        assert inst.total_utilization() == pytest.approx(0.5 * 2 + 0.4 * 3)

    def test_active_at_and_load_at(self):
        inst = inst_1d((0, 2, 0.3), (1, 4, 0.4))
        assert len(inst.active_at(0.5)) == 1
        assert len(inst.active_at(1.5)) == 2
        assert inst.load_at(1.5)[0] == pytest.approx(0.7)
        assert inst.load_at(2.0)[0] == pytest.approx(0.4)  # half-open

    def test_event_times(self):
        inst = inst_1d((0, 2, 0.1), (1, 2, 0.1))
        assert inst.event_times() == [0, 1, 2]

    def test_active_components(self):
        inst = inst_1d((0, 1, 0.1), (3, 4, 0.1))
        assert inst.active_components() == [Interval(0, 1), Interval(3, 4)]


class TestTransforms:
    def test_normalized(self):
        inst = Instance([Item(0, 1, np.array([50.0, 20.0]), 0)], capacity=[100.0, 40.0])
        norm = inst.normalized()
        assert np.allclose(norm.capacity, 1.0)
        assert np.allclose(norm[0].size, [0.5, 0.5])

    def test_normalized_noop_when_unit(self):
        inst = inst_1d((0, 1, 0.5))
        assert inst.normalized() is inst

    def test_restricted_to(self):
        inst = inst_1d((0, 1, 0.1), (5, 7, 0.1))
        sub = inst.restricted_to(Interval(4, 6))
        assert len(sub) == 1 and sub[0].arrival == 5

    def test_restricted_to_empty_raises(self):
        inst = inst_1d((0, 1, 0.1))
        with pytest.raises(InvalidInstanceError):
            inst.restricted_to(Interval(10, 12))

    def test_concatenated(self):
        a = inst_1d((0, 1, 0.1))
        b = inst_1d((2, 3, 0.2))
        both = a.concatenated(b)
        assert len(both) == 2
        assert [it.uid for it in both] == [0, 1]

    def test_concatenated_capacity_mismatch(self):
        a = inst_1d((0, 1, 0.1))
        b = Instance([Item(0, 1, np.array([0.1]), 0)], capacity=2.0)
        with pytest.raises(InvalidInstanceError):
            a.concatenated(b)


class TestSerialisation:
    def test_roundtrip_dict(self):
        inst = Instance(
            [Item(0, 2, np.array([0.5, 0.2]), 0), Item(1, 3, np.array([0.1, 0.4]), 1)],
            name="demo",
        )
        back = Instance.from_dict(inst.to_dict())
        assert back.name == "demo"
        assert len(back) == 2
        assert np.allclose(back[0].size, inst[0].size)
        assert back[1].departure == 3

    def test_roundtrip_json(self):
        inst = inst_1d((0, 2, 0.5), (1, 3, 0.25))
        back = Instance.from_json(inst.to_json())
        assert back.span == inst.span
        assert back.mu == inst.mu
