"""Unit tests for the discrete-event simulation engine."""

from __future__ import annotations

from typing import List

import numpy as np
import pytest

from repro.algorithms.base import AnyFitAlgorithm
from repro.algorithms.first_fit import FirstFit
from repro.core.errors import AlgorithmError
from repro.core.instance import Instance
from repro.core.items import Item
from repro.simulation.engine import Engine, SimulationObserver, simulate


class RecordingObserver(SimulationObserver):
    """Collects every hook invocation for assertions."""

    def __init__(self):
        self.events: List[tuple] = []

    def on_start(self, instance, algorithm):
        self.events.append(("start", algorithm.name))

    def on_bin_opened(self, bin_, now):
        self.events.append(("open", bin_.index, now))

    def on_packed(self, bin_, item, now, opened_new):
        self.events.append(("pack", bin_.index, item.uid, now, opened_new))

    def on_departed(self, bin_, item, now, closed):
        self.events.append(("depart", bin_.index, item.uid, now, closed))

    def on_finish(self, packing):
        self.events.append(("finish", packing.num_bins))


class TestEngineBasics:
    def test_single_item(self):
        inst = Instance([Item(0, 1, np.array([0.5]), 0)])
        packing = simulate(FirstFit(), inst)
        assert packing.num_bins == 1
        assert packing.cost == pytest.approx(1.0)

    def test_cost_matches_bin_spans(self, tiny_instance):
        packing = simulate(FirstFit(), tiny_instance)
        assert packing.cost == pytest.approx(
            sum(r.usage_time for r in packing.bins)
        )

    def test_assignment_covers_all_items(self, uniform_small):
        packing = simulate(FirstFit(), uniform_small)
        assert set(packing.assignment) == {it.uid for it in uniform_small.items}

    def test_engine_is_single_use(self, tiny_instance):
        engine = Engine(tiny_instance, FirstFit())
        engine.run()
        with pytest.raises(AlgorithmError):
            engine.run()

    def test_algorithm_reusable_across_engines(self, tiny_instance, uniform_small):
        algo = FirstFit()
        p1 = simulate(algo, tiny_instance)
        p2 = simulate(algo, uniform_small)
        p1.validate()
        p2.validate()

    def test_bins_indexed_in_opening_order(self, uniform_small):
        packing = simulate(FirstFit(), uniform_small)
        opens = [r.opened_at for r in sorted(packing.bins, key=lambda r: r.index)]
        assert opens == sorted(opens)


class TestObserverHooks:
    def test_all_hooks_fire(self, tiny_instance):
        obs = RecordingObserver()
        simulate(FirstFit(), tiny_instance, observers=[obs])
        kinds = [e[0] for e in obs.events]
        assert kinds[0] == "start"
        assert kinds[-1] == "finish"
        assert kinds.count("pack") == 3
        assert kinds.count("depart") == 3

    def test_open_precedes_pack_for_new_bins(self, tiny_instance):
        obs = RecordingObserver()
        simulate(FirstFit(), tiny_instance, observers=[obs])
        seen_open = set()
        for e in obs.events:
            if e[0] == "open":
                seen_open.add(e[1])
            if e[0] == "pack" and e[4]:  # opened_new
                assert e[1] in seen_open

    def test_departures_report_closure(self):
        inst = Instance([Item(0, 1, np.array([0.5]), 0)])
        obs = RecordingObserver()
        simulate(FirstFit(), inst, observers=[obs])
        departs = [e for e in obs.events if e[0] == "depart"]
        assert departs == [("depart", 0, 0, 1.0, True)]


class TestEngineContracts:
    def test_double_open_rejected(self, tiny_instance):
        class DoubleOpener(AnyFitAlgorithm):
            name = "double_opener"

            def choose(self, item, candidates, now):
                return candidates[0]

            def dispatch(self, item, now, open_new_bin):
                open_new_bin()
                return open_new_bin()  # second open must raise

        with pytest.raises(AlgorithmError):
            simulate(DoubleOpener(), tiny_instance)

    def test_unoffered_bin_rejected(self, tiny_instance):
        from repro.core.bins import Bin

        class Rogue(AnyFitAlgorithm):
            name = "rogue"

            def choose(self, item, candidates, now):
                # returns a bin that was never offered
                return Bin(np.ones(1), index=99, opened_at=now)

        with pytest.raises(AlgorithmError):
            simulate(Rogue(), tiny_instance)

    def test_dispatch_before_start_rejected(self, tiny_instance):
        algo = FirstFit()
        with pytest.raises(AlgorithmError):
            algo.dispatch(tiny_instance[0], 0.0, lambda: None)

    def test_irrevocability(self, uniform_small):
        """Once packed, an item's bin never changes (engine guarantees it
        structurally; assert the assignment maps each uid exactly once)."""
        packing = simulate(FirstFit(), uniform_small)
        seen = {}
        for rec in packing.bins:
            for uid in rec.item_uids:
                assert uid not in seen, f"item {uid} appears in two bins"
                seen[uid] = rec.index
        assert seen == dict(packing.assignment)


class TestFastFallback:
    """``fast=True`` degradation: correct, surfaced, never silent."""

    def setup_method(self):
        from repro.simulation.engine import reset_fallback_warnings

        reset_fallback_warnings()

    def test_kernel_failure_degrades_to_classic(self, uniform_small, monkeypatch):
        import repro.simulation.fastpath as fastpath
        from repro.observability.stats import StatsCollector

        class Boom(Exception):
            pass

        def explode(*args, **kwargs):
            raise Boom("kernel blew up")

        monkeypatch.setattr(fastpath, "FastEngine", explode)
        collector = StatsCollector()
        reference = simulate(FirstFit(), uniform_small)
        with pytest.warns(RuntimeWarning, match="fast kernel failed"):
            packing = simulate(FirstFit(), uniform_small, fast=True,
                               collector=collector)
        assert dict(packing.assignment) == dict(reference.assignment)
        assert packing.cost == reference.cost
        assert collector.fastpath_fallbacks == 1
        # the aborted fast attempt must not have leaked partial counters
        assert collector.snapshot().deterministic_part() is not None

    def test_fallback_warns_once_per_cause(self, uniform_small, monkeypatch):
        import warnings

        import repro.simulation.fastpath as fastpath

        monkeypatch.setattr(fastpath, "FastEngine",
                            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("x")))
        with pytest.warns(RuntimeWarning):
            simulate(FirstFit(), uniform_small, fast=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            simulate(FirstFit(), uniform_small, fast=True)

    def test_no_kernel_policy_falls_back_with_counter(self, uniform_small):
        from repro.observability.stats import StatsCollector

        class Custom(AnyFitAlgorithm):
            name = "custom_no_kernel"

            def choose(self, item, candidates, now):
                return candidates[0]

        collector = StatsCollector()
        with pytest.warns(RuntimeWarning, match="no fast kernel"):
            packing = simulate(Custom(), uniform_small, fast=True,
                               collector=collector)
        assert collector.fastpath_fallbacks == 1
        assert packing.num_bins >= 1

    def test_observers_force_classic_with_warning(self, uniform_small):
        obs = RecordingObserver()
        with pytest.warns(RuntimeWarning, match="observers requested"):
            packing = simulate(FirstFit(), uniform_small, fast=True,
                               observers=[obs])
        assert obs.events  # the classic engine really ran the hooks
        assert packing.num_bins >= 1

    def test_eligible_fast_run_matches_classic_bit_identically(self, uniform_small):
        classic = simulate(FirstFit(), uniform_small)
        fast = simulate(FirstFit(), uniform_small, fast=True)
        assert dict(fast.assignment) == dict(classic.assignment)
        assert fast.cost == classic.cost
