"""Tests for the experiment drivers (tables and figures)."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ConfigurationError
from repro.experiments.config import FULL, QUICK, SMOKE, ExperimentConfig
from repro.experiments.figure4 import render_figure4, run_figure4
from repro.experiments.figures123 import run_figure1, run_figure2, run_figure3
from repro.experiments.table1 import (
    render_table1,
    render_table1_bounds,
    run_table1,
)
from repro.experiments.table2 import render_table2


class TestConfig:
    def test_full_matches_paper(self):
        assert FULL.d_values == (1, 2, 5)
        assert FULL.mu_values == (1, 2, 5, 10, 100, 200)
        assert FULL.n == 1000 and FULL.T == 1000 and FULL.B == 100 and FULL.m == 1000

    def test_quick_same_grid(self):
        assert QUICK.d_values == FULL.d_values
        assert QUICK.mu_values == FULL.mu_values

    def test_scaled(self):
        cfg = FULL.scaled(n=50, m=3)
        assert cfg.n == 50 and cfg.m == 3 and cfg.d_values == FULL.d_values

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(d_values=())
        with pytest.raises(ConfigurationError):
            ExperimentConfig(mu_values=(0,))
        with pytest.raises(ConfigurationError):
            ExperimentConfig(mu_values=(2000,), T=1000)


class TestTable2:
    def test_full_render_contains_paper_values(self):
        out = render_table2()
        assert "{1, 2, 5}" in out
        assert "n = 1000" in out
        assert "B = 100" in out

    def test_scaled_render_self_describing(self):
        out = render_table2(SMOKE)
        assert "n = 100" in out and "m = 5" in out


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table1(ks=(2, 4), d_values=(1, 2), mu=3.0,
                          anyfit_algorithms=("move_to_front", "first_fit"))

    def test_rows_cover_all_families(self, rows):
        families = {r.family for r in rows}
        assert families == {"thm5_anyfit", "thm6_nextfit", "thm8_mtf", "bf_trap"}

    def test_measured_ratio_below_target(self, rows):
        for r in rows:
            assert r.measured_ratio <= r.target_ratio + 1e-6

    def test_measured_ratio_below_theory_upper(self, rows):
        for r in rows:
            if not math.isinf(r.theory_upper):
                assert r.measured_ratio <= r.theory_upper + 1e-6

    def test_fraction_of_target_grows_with_k(self, rows):
        thm8 = [r for r in rows if r.family == "thm8_mtf" and r.algorithm == "move_to_front"]
        fracs = [r.fraction_of_target for r in sorted(thm8, key=lambda r: r.k)]
        assert fracs == sorted(fracs)

    def test_render_contains_all_families(self, rows):
        out = render_table1(rows)
        assert "thm5_anyfit" in out and "bf_trap" in out

    def test_render_bounds_table(self):
        out = render_table1_bounds(mu=5.0, d_values=(1, 2))
        assert "move_to_front" in out and "unbounded" in out


class TestFigures123:
    def test_figure1_reports_partition_ok(self):
        out = run_figure1()
        assert "Figure 1" in out
        if "Claim 1 check" in out:
            assert "OK" in out

    def test_figure2_runs(self):
        out = run_figure2()
        assert "Figure 2" in out and "span(R)" in out

    def test_figure3_shows_three_phases(self):
        out = run_figure3(d=2, k=2, mu=3.0)
        assert "(a)" in out and "(b)" in out and "(c)" in out
        # phase (c): each of dk bins holds one small R1 item
        assert "4 open bins" in out


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure4(config=SMOKE)

    def test_grid_covered(self, result):
        assert set(result.cells) == {
            (d, mu) for d in SMOKE.d_values for mu in SMOKE.mu_values
        }

    def test_series_lengths(self, result):
        series = result.series(1)
        assert all(len(v) == len(SMOKE.mu_values) for v in series.values())

    def test_all_ratios_at_least_one(self, result):
        for cell in result.cells.values():
            for st in cell.stats.values():
                assert st.mean >= 1.0 - 1e-9

    def test_render_contains_panels(self, result):
        out = render_figure4(result)
        for d in SMOKE.d_values:
            assert f"d = {d}" in out

    def test_reproducible(self):
        a = run_figure4(config=SMOKE)
        b = run_figure4(config=SMOKE)
        for key in a.cells:
            for algo in a.algorithms:
                assert a.cells[key].stats[algo].mean == pytest.approx(
                    b.cells[key].stats[algo].mean
                )


class TestFigure4Extras:
    def test_csv_export_shape(self):
        from repro.experiments.figure4 import figure4_csv

        result = run_figure4(config=SMOKE)
        csv = figure4_csv(result)
        lines = csv.strip().splitlines()
        expected = 1 + len(SMOKE.d_values) * len(SMOKE.mu_values) * len(result.algorithms)
        assert len(lines) == expected
        assert lines[0] == "d,mu,algorithm,mean,std,count"
        assert all(line.count(",") == 5 for line in lines[1:])

    def test_parallel_matches_serial(self):
        serial = run_figure4(config=SMOKE, processes=0)
        parallel = run_figure4(config=SMOKE, processes=2)
        for key in serial.cells:
            for algo in serial.algorithms:
                assert serial.cells[key].stats[algo].mean == pytest.approx(
                    parallel.cells[key].stats[algo].mean
                )
