"""Unit tests for repro.core.vectors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.errors import InvalidItemError
from repro.core.vectors import (
    EPS,
    as_size_vector,
    check_proposition1,
    dominates,
    fits,
    fits_batch,
    l1,
    linf,
    lp,
)


class TestAsSizeVector:
    def test_scalar_promoted_to_1d(self):
        v = as_size_vector(0.5)
        assert v.shape == (1,)
        assert v[0] == 0.5

    def test_list_accepted(self):
        v = as_size_vector([0.1, 0.2, 0.3])
        assert v.shape == (3,)

    def test_copy_is_owned(self):
        src = np.array([0.1, 0.2])
        v = as_size_vector(src)
        src[0] = 9.0
        assert v[0] == 0.1

    def test_negative_rejected(self):
        with pytest.raises(InvalidItemError):
            as_size_vector([-0.1, 0.2])

    def test_nan_rejected(self):
        with pytest.raises(InvalidItemError):
            as_size_vector([np.nan])

    def test_inf_rejected(self):
        with pytest.raises(InvalidItemError):
            as_size_vector([np.inf])

    def test_2d_rejected(self):
        with pytest.raises(InvalidItemError):
            as_size_vector(np.zeros((2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(InvalidItemError):
            as_size_vector(np.zeros(0))

    def test_dimension_check(self):
        with pytest.raises(InvalidItemError):
            as_size_vector([0.1, 0.2], d=3)

    def test_dimension_check_passes(self):
        v = as_size_vector([0.1, 0.2], d=2)
        assert v.size == 2

    def test_dtype_is_float64(self):
        assert as_size_vector([1, 2]).dtype == np.float64


class TestNorms:
    def test_linf_basic(self):
        assert linf(np.array([0.2, 0.9, 0.5])) == 0.9

    def test_linf_1d(self):
        assert linf(np.array([0.3])) == 0.3

    def test_l1_basic(self):
        assert l1(np.array([0.2, 0.3])) == pytest.approx(0.5)

    def test_lp_p2(self):
        assert lp(np.array([3.0, 4.0]), 2) == pytest.approx(5.0)

    def test_lp_p1_equals_l1_bitwise(self):
        # the p = 1 contract is *bitwise*: lp routes to l1's exact sum
        # instead of taking the pow/root round-trip
        rng = np.random.default_rng(7)
        for d in (1, 2, 5, 9):
            v = rng.random(d)
            assert lp(v, 1) == l1(v)
            assert lp(v, 1.0) == l1(v)

    def test_lp_inf_routes_to_linf(self):
        v = np.array([0.2, 0.7])
        assert lp(v, np.inf) == linf(v)
        assert lp(v, float("inf")) == linf(v)

    def test_lp_invalid_p(self):
        # the aligned contract: any p >= 1 is a norm, anything below
        # (or NaN) is rejected everywhere with the same rule
        for bad in (0.0, 0.5, -1.0, float("nan")):
            with pytest.raises(ValueError):
                lp(np.array([1.0]), bad)

    def test_lp_large_p_approaches_linf(self):
        v = np.array([0.5, 0.9])
        assert lp(v, 64) == pytest.approx(linf(v), rel=1e-2)


class TestFits:
    CAP = np.ones(2)

    def test_fits_with_room(self):
        assert fits(np.array([0.3, 0.3]), np.array([0.5, 0.5]), self.CAP)

    def test_exact_fit_allowed(self):
        assert fits(np.array([0.5, 0.2]), np.array([0.5, 0.8]), self.CAP)

    def test_overflow_one_dim_rejected(self):
        assert not fits(np.array([0.6, 0.1]), np.array([0.5, 0.1]), self.CAP)

    def test_tolerance_absorbs_float_noise(self):
        load = np.array([0.1] * 2) * 3  # 0.30000000000000004
        assert fits(load, np.array([0.7, 0.7]), self.CAP)

    def test_nonunit_capacity(self):
        cap = np.array([100.0, 100.0])
        assert fits(np.array([60.0, 10.0]), np.array([40.0, 20.0]), cap)
        assert not fits(np.array([61.0, 10.0]), np.array([40.0, 20.0]), cap)

    def test_fits_batch_empty(self):
        out = fits_batch(np.zeros((0, 2)), np.array([0.1, 0.1]), self.CAP)
        assert out.shape == (0,)

    def test_fits_batch_matches_scalar(self):
        loads = np.array([[0.2, 0.9], [0.5, 0.5], [0.95, 0.0]])
        size = np.array([0.4, 0.1])
        batch = fits_batch(loads, size, self.CAP)
        scalar = [fits(row, size, self.CAP) for row in loads]
        assert list(batch) == scalar

    @given(
        loads=hnp.arrays(np.float64, (5, 3), elements=st.floats(0, 1)),
        size=hnp.arrays(np.float64, (3,), elements=st.floats(0, 1)),
    )
    @settings(max_examples=50)
    def test_fits_batch_always_matches_scalar(self, loads, size):
        cap = np.ones(3)
        batch = fits_batch(loads, size, cap)
        scalar = [fits(row, size, cap) for row in loads]
        assert list(batch) == scalar


class TestDominates:
    def test_dominates_true(self):
        assert dominates(np.array([0.5, 0.5]), np.array([0.4, 0.5]))

    def test_dominates_false(self):
        assert not dominates(np.array([0.5, 0.3]), np.array([0.4, 0.5]))


class TestProposition1:
    def test_empty_collection(self):
        assert check_proposition1([])

    def test_hand_example(self):
        vecs = [np.array([1.0, 0.0]), np.array([0.0, 1.0])]
        # sum = (1,1): linf 1 <= 2 <= 2*1
        assert check_proposition1(vecs)

    @given(
        st.lists(
            hnp.arrays(np.float64, (4,), elements=st.floats(0, 10)),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=100)
    def test_sandwich_holds_for_random_vectors(self, vecs):
        assert check_proposition1(vecs)

    @given(
        hnp.arrays(np.float64, (3,), elements=st.floats(0, 5)),
        st.floats(0, 4),
    )
    @settings(max_examples=50)
    def test_homogeneity(self, v, c):
        assert linf(c * v) == pytest.approx(c * linf(v), abs=1e-12)
