"""Memory-layout and derived-quantity caching regressions.

Pins the two instance-level amortisation satellites of the batched
execution work:

* ``Item`` / ``Event`` are slotted on Python >= 3.10 (no per-object
  ``__dict__``), while staying picklable and copyable — the layouts the
  hot event loop allocates per event;
* ``Instance`` derived quantities (``mu``, ``span``, duration extrema,
  ``dimension_maxima``) are cached properties: computed once, correct,
  and returning the same object on re-access.
"""

from __future__ import annotations

import copy
import pickle
import sys

import numpy as np
import pytest

from repro.core.items import Item
from repro.core.events import Event, EventKind, event_stream
from repro.verify.generators import corpus_list
from repro.workloads.uniform import UniformWorkload
from repro.workloads.base import generate_batch

SLOTTED = sys.version_info >= (3, 10)


def _item():
    return Item(uid=3, arrival=1.5, departure=4.0, size=[2.0, 3.0])


# ----------------------------------------------------------------------
# __slots__ on hot per-event objects
# ----------------------------------------------------------------------
@pytest.mark.skipif(not SLOTTED, reason="dataclass slots need Python 3.10+")
def test_item_and_event_have_no_dict():
    item = _item()
    event = Event(time=1.5, kind=EventKind.ARRIVAL, seq=0, item=item)
    for obj in (item, event):
        assert not hasattr(obj, "__dict__")
        with pytest.raises(AttributeError):
            object.__getattribute__(obj, "__dict__")


def test_slotted_item_still_pickles_and_copies():
    item = _item()
    for clone in (pickle.loads(pickle.dumps(item)), copy.deepcopy(item)):
        assert clone.uid == item.uid
        assert clone.arrival == item.arrival
        assert clone.departure == item.departure
        assert np.array_equal(clone.size, item.size)


def test_slotted_event_still_pickles_and_orders():
    inst = generate_batch(UniformWorkload(d=2, n=10, mu=3), 1, seed=2)[0]
    events = event_stream(inst)
    assert len(events) == 2 * len(inst.items)
    assert events == sorted(events)  # dataclass ordering == module ordering
    clone = pickle.loads(pickle.dumps(events[0]))
    assert clone.time == events[0].time and clone.kind == events[0].kind


def test_instances_pickle_round_trip_with_slotted_items():
    inst = generate_batch(UniformWorkload(d=2, n=25, mu=4), 1, seed=9)[0]
    clone = pickle.loads(pickle.dumps(inst))
    assert clone.to_dict() == inst.to_dict()


# ----------------------------------------------------------------------
# Instance cached properties
# ----------------------------------------------------------------------
@pytest.fixture()
def inst():
    return corpus_list(4, seed=20230613)[3].instance


def test_cached_properties_return_cached_objects(inst):
    assert inst.dimension_maxima is inst.dimension_maxima
    for name in ("mu", "span", "min_duration", "max_duration", "total_duration"):
        first = getattr(inst, name)
        assert getattr(inst, name) == first
        # cached_property stores the computed value in the __dict__
        assert name in vars(inst)


def test_cached_property_values_match_definitions(inst):
    durations = [it.departure - it.arrival for it in inst.items]
    assert inst.min_duration == min(durations)
    assert inst.max_duration == max(durations)
    assert inst.mu == max(durations) / min(durations)
    assert inst.total_duration == sum(durations)
    # span(R) is the measure of the union of the active intervals
    union = 0.0
    lo = hi = None
    for a, b in sorted((it.arrival, it.departure) for it in inst.items):
        if lo is None or a > hi:
            if lo is not None:
                union += hi - lo
            lo, hi = a, b
        elif b > hi:
            hi = b
    union += hi - lo
    assert inst.span == pytest.approx(union)
    arrivals = [it.arrival for it in inst.items]
    departures = [it.departure for it in inst.items]
    assert (inst.horizon.start, inst.horizon.end) == (min(arrivals), max(departures))
    expected = np.max(np.stack([it.size for it in inst.items]), axis=0)
    assert np.array_equal(inst.dimension_maxima, expected)


def test_dimension_maxima_is_read_only(inst):
    maxima = inst.dimension_maxima
    assert not maxima.flags.writeable
    with pytest.raises(ValueError):
        maxima[0] = -1.0
