"""Tests for the heterogeneous-fleet extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import AlgorithmError, ConfigurationError, PackingAuditError
from repro.core.instance import Instance
from repro.core.items import Item
from repro.heterogeneous import (
    DEFAULT_FLEET,
    Fleet,
    ServerType,
    TypedAnyFit,
    TypedEngine,
    typed_run,
)
from repro.workloads.distributions import DirichletSize
from repro.workloads.poisson import PoissonWorkload


@pytest.fixture
def workload_instance():
    gen = PoissonWorkload(d=2, rate=1.0, horizon=40,
                          sizes=DirichletSize(min_mag=0.05, max_mag=0.8))
    return gen.sample_seeded(1)


class TestServerType:
    def test_basic_properties(self):
        t = ServerType("big", (2.0, 4.0), 3.0)
        assert t.d == 2
        assert t.cost_density == pytest.approx(3.0 / 4.0)

    def test_fits_item(self):
        t = ServerType("small", (1.0, 1.0), 1.0)
        assert t.fits_item(Item(0, 1, np.array([1.0, 0.5]), 0))
        assert not t.fits_item(Item(0, 1, np.array([1.1, 0.5]), 0))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServerType("bad", (0.0,), 1.0)
        with pytest.raises(ConfigurationError):
            ServerType("bad", (1.0,), 0.0)


class TestFleet:
    def test_default_fleet_shape(self):
        assert len(DEFAULT_FLEET) == 3
        assert DEFAULT_FLEET.d == 2

    def test_cheapest_feasible(self):
        item = Item(0, 1, np.array([1.5, 0.5]), 0)  # too big for "small"
        t = DEFAULT_FLEET.cheapest_feasible(item)
        assert t.name == "large"

    def test_best_value_prefers_scale(self):
        item = Item(0, 1, np.array([0.5, 0.5]), 0)
        t = DEFAULT_FLEET.best_value_feasible(item)
        assert t.name == "xlarge"  # lowest cost density in DEFAULT_FLEET

    def test_infeasible_item_rejected(self):
        item = Item(0, 1, np.array([100.0, 0.1]), 0)
        with pytest.raises(ConfigurationError):
            DEFAULT_FLEET.cheapest_feasible(item)

    def test_by_name(self):
        assert DEFAULT_FLEET.by_name("small").cost_rate == 1.0
        with pytest.raises(KeyError):
            DEFAULT_FLEET.by_name("teapot")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Fleet([])
        with pytest.raises(ConfigurationError):
            Fleet([ServerType("a", (1.0,), 1.0), ServerType("a", (2.0,), 1.0)])
        with pytest.raises(ConfigurationError):
            Fleet([ServerType("a", (1.0,), 1.0), ServerType("b", (1.0, 1.0), 1.0)])


class TestTypedRuns:
    @pytest.mark.parametrize("opening_rule", ["cheapest", "best_value"])
    @pytest.mark.parametrize("selection", ["recent", "first", "cheapest_rate"])
    def test_all_policy_combinations_feasible(
        self, workload_instance, opening_rule, selection
    ):
        algo = TypedAnyFit(DEFAULT_FLEET, opening_rule=opening_rule,
                           selection=selection)
        packing = typed_run(algo, workload_instance, validate=True)
        assert packing.cost > 0
        assert set(packing.assignment) == {it.uid for it in workload_instance.items}

    def test_cost_is_rate_weighted(self):
        # one item on a "large" (rate 1.8) for 2 time units
        inst = Instance([Item(0, 2, np.array([1.5, 0.5]), 0)], capacity=[4.0, 4.0])
        algo = TypedAnyFit(DEFAULT_FLEET, opening_rule="cheapest")
        packing = typed_run(algo, inst)
        assert packing.bins[0].type_name == "large"
        assert packing.cost == pytest.approx(2 * 1.8)

    def test_oversized_per_type_items_split_across_types(self):
        # items of max demand 1.5 can never use "small"
        inst = Instance(
            [Item(0, 1, np.array([1.5, 0.2]), i) for i in range(4)],
            capacity=[4.0, 4.0],
        )
        algo = TypedAnyFit(DEFAULT_FLEET, opening_rule="cheapest")
        packing = typed_run(algo, inst, validate=True)
        assert all(rec.type_name in ("large", "xlarge") for rec in packing.bins)

    def test_any_fit_property_across_types(self, workload_instance):
        """A new server is opened only when no open server fits."""
        algo = TypedAnyFit(DEFAULT_FLEET, opening_rule="cheapest")
        packing = typed_run(algo, workload_instance)
        # replay chronologically
        from repro.core.events import EventKind, event_stream
        from repro.core.vectors import EPS

        caps = {rec.index: DEFAULT_FLEET.by_name(rec.type_name).capacity_array
                for rec in packing.bins}
        loads, members = {}, {}
        for ev in event_stream(workload_instance):
            b = packing.assignment[ev.item.uid]
            if ev.kind is EventKind.DEPARTURE:
                members[b].discard(ev.item.uid)
                loads[b] = loads[b] - ev.item.size
                if not members[b]:
                    del members[b], loads[b]
                continue
            if b not in loads:
                for other, load in loads.items():
                    cap = caps[other]
                    slack = cap + EPS * np.maximum(cap, 1.0)
                    assert np.any(load + ev.item.size > slack), (
                        f"typed Any Fit violated at item {ev.item.uid}"
                    )
                loads[b] = np.zeros(workload_instance.d)
                members[b] = set()
            loads[b] = loads[b] + ev.item.size
            members[b].add(ev.item.uid)

    def test_single_type_fleet_matches_homogeneous_mf(self, workload_instance):
        """With one unit-capacity type and recency selection, the typed
        engine is exactly Move To Front."""
        from repro.simulation.runner import run

        fleet = Fleet([ServerType("unit", (1.0, 1.0), 1.0)])
        typed = typed_run(TypedAnyFit(fleet, opening_rule="cheapest"), workload_instance)
        plain = run("move_to_front", workload_instance)
        assert typed.assignment == dict(plain.assignment)
        assert typed.cost == pytest.approx(plain.cost)

    def test_engine_single_use(self, workload_instance):
        engine = TypedEngine(workload_instance, TypedAnyFit(DEFAULT_FLEET))
        engine.run()
        with pytest.raises(AlgorithmError):
            engine.run()

    def test_dimension_mismatch_rejected(self):
        inst = Instance([Item(0, 1, np.array([0.5]), 0)])
        with pytest.raises(ConfigurationError):
            TypedEngine(inst, TypedAnyFit(DEFAULT_FLEET))

    def test_invalid_policy_options(self):
        with pytest.raises(ConfigurationError):
            TypedAnyFit(DEFAULT_FLEET, opening_rule="random")
        with pytest.raises(ConfigurationError):
            TypedAnyFit(DEFAULT_FLEET, selection="middle")

    def test_validate_catches_corruption(self, workload_instance):
        algo = TypedAnyFit(DEFAULT_FLEET)
        packing = typed_run(algo, workload_instance)
        bad = TypedPacking = type(packing)(
            instance=packing.instance,
            fleet=packing.fleet,
            assignment={**packing.assignment, workload_instance[0].uid: 9999},
            bins=packing.bins,
            algorithm=packing.algorithm,
        )
        # mangled assignment still covers uids, so corrupt a bin's type
        from repro.heterogeneous.engine import TypedBinRecord

        shrunk = tuple(
            TypedBinRecord(r.index, "small", r.cost_rate, r.opened_at,
                           r.closed_at, r.item_uids)
            for r in packing.bins
        )
        candidate = type(packing)(
            instance=packing.instance, fleet=packing.fleet,
            assignment=packing.assignment, bins=shrunk,
            algorithm=packing.algorithm,
        )
        # shrinking every bin to "small" must break some capacity check
        # whenever the original run used a bigger type
        if any(r.type_name != "small" for r in packing.bins):
            with pytest.raises(PackingAuditError):
                candidate.validate()


class TestEconomics:
    def test_best_value_beats_cheapest_under_heavy_load(self):
        """With heavy load, economies of scale win: opening big boxes is
        cheaper per unit of work."""
        gen = PoissonWorkload(d=2, rate=10.0, horizon=40,
                              sizes=DirichletSize(min_mag=0.1, max_mag=0.9))
        cheap_total = value_total = 0.0
        for seed in range(4):
            inst = gen.sample_seeded(seed)
            cheap_total += typed_run(
                TypedAnyFit(DEFAULT_FLEET, opening_rule="cheapest"), inst
            ).cost
            value_total += typed_run(
                TypedAnyFit(DEFAULT_FLEET, opening_rule="best_value"), inst
            ).cost
        assert value_total < cheap_total


class TestHeterogeneousProperties:
    """Hypothesis properties over random instances."""

    @staticmethod
    def _fleet():
        return Fleet(
            [
                ServerType("s", (1.0, 1.0), 1.0),
                ServerType("l", (2.5, 2.5), 2.0),
            ]
        )

    def test_feasible_on_random_instances(self):
        from hypothesis import HealthCheck, given, settings
        from tests.test_properties import instances

        @given(inst=instances(max_items=20, max_d=2))
        @settings(max_examples=20, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])
        def check(inst):
            if inst.d != 2:
                return
            for rule in ("cheapest", "best_value"):
                algo = TypedAnyFit(self._fleet(), opening_rule=rule)
                packing = typed_run(algo, inst, validate=True)
                assert packing.cost > 0
                # typed cost is rate-weighted usage: at least span * min rate
                assert packing.cost >= inst.span * 1.0 - 1e-9

        check()

    def test_cost_at_least_homogeneous_lb_scaled(self):
        """With all rates >= 1 and the smallest capacity equal to the
        instance capacity, the typed bill is at least the homogeneous
        Lemma 1 span bound."""
        from repro.optimum.lower_bounds import span_lower_bound

        gen = PoissonWorkload(d=2, rate=2.0, horizon=30,
                              sizes=DirichletSize(min_mag=0.05, max_mag=0.8))
        for seed in range(3):
            inst = gen.sample_seeded(seed)
            packing = typed_run(TypedAnyFit(self._fleet()), inst)
            assert packing.cost >= span_lower_bound(inst) - 1e-9
