"""Differential tests for the migration-budget repacking engine.

Two contracts, over the full 22-recipe verification corpus:

* **Budget-0 bit-identity** — every repacking policy run with a budget
  of zero performs no moves and must reproduce the classic engine's
  packing exactly (same assignment, same bin count, bit-identical
  cost), for all seven Section 7 policies.  This is the ``NoRepack``
  differential oracle of docs/repacking.md, exercised here at full
  corpus breadth.
* **Budget-k behaviour** — raising the budget never hurts
  ``greedy_consolidate`` (it only commits strictly-improving whole-bin
  evacuations, so its cost is bounded by the no-recourse cost exactly),
  costs are weakly monotone in ``k`` up to a small dispatch-divergence
  slack, and every run satisfies the ledger/budget invariants replayed
  from the raw move log.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from repro.repacking import (
    REPACK_POLICIES,
    audit_repacking,
    repacking_run,
    replay_budget_check,
)
from repro.simulation.runner import run
from repro.verify.generators import CORPUS_RECIPES, corpus_list

_SEED = 20230613
#: Budget-k cost may drift slightly *upwards* between adjacent budgets
#: (a locally-good evacuation changes later dispatch decisions); the
#: measured worst case across the corpus grid is < 0.8%, so 2% slack
#: separates model behaviour from genuine regressions.
_MONOTONE_SLACK = 0.02

CORPUS = corpus_list(len(CORPUS_RECIPES), seed=_SEED)


def _ids(entries):
    return [e.recipe for e in entries]


def _algo(policy):
    kwargs = {"seed": 0} if policy == "random_fit" else {}
    return make_algorithm(policy, **kwargs)


# ----------------------------------------------------------------------
# budget-0 bit-identity: every repack policy collapses to the classic
# engine when it cannot move anything
# ----------------------------------------------------------------------

@pytest.mark.parametrize("policy", PAPER_ALGORITHMS)
@pytest.mark.parametrize("entry", CORPUS, ids=_ids(CORPUS))
def test_budget_zero_is_bit_identical_to_classic(policy, entry):
    inst = entry.instance
    classic = run(_algo(policy), inst)
    for repacker in sorted(REPACK_POLICIES):
        result = repacking_run(_algo(policy), inst, repacker=repacker, budget=0.0)
        assert result.num_moves == 0
        assert dict(result.packing.assignment) == dict(classic.assignment), (
            f"{entry.recipe}/{policy}/{repacker}: budget-0 assignment diverged"
        )
        assert result.num_bins == classic.num_bins
        # zero moves -> the identical from_assignment arithmetic: exact
        assert result.cost == classic.cost


@pytest.mark.parametrize("entry", CORPUS[:6], ids=_ids(CORPUS[:6]))
def test_budget_zero_via_engine_spec_string(entry):
    """The ``engine="repacking"`` spec string routes are bit-identical too."""
    inst = entry.instance
    classic = run("first_fit", inst)
    via_spec = run("first_fit", inst, engine="repacking:no_repack:0")
    assert dict(via_spec.assignment) == dict(classic.assignment)
    assert via_spec.cost == classic.cost


# ----------------------------------------------------------------------
# budget-k: monotonicity and invariants
# ----------------------------------------------------------------------

@pytest.mark.parametrize("policy", PAPER_ALGORITHMS)
@pytest.mark.parametrize("entry", CORPUS, ids=_ids(CORPUS))
def test_greedy_consolidate_never_worse_than_no_recourse(policy, entry):
    """Strictly-improving evacuations can only lower the Eq. 1 cost."""
    inst = entry.instance
    base = run(_algo(policy), inst)
    for budget in (1.0, 2.0, 4.0):
        result = repacking_run(
            _algo(policy), inst, repacker="greedy_consolidate", budget=budget
        )
        assert result.cost <= base.cost + 1e-9 * max(1.0, base.cost), (
            f"{entry.recipe}/{policy}: greedy_consolidate(budget={budget:g}) "
            f"cost {result.cost} exceeds no-recourse cost {base.cost}"
        )


@pytest.mark.parametrize("repacker", ["greedy_consolidate", "budgeted_rebalance"])
@pytest.mark.parametrize("entry", CORPUS, ids=_ids(CORPUS))
def test_cost_weakly_monotone_in_budget(repacker, entry):
    """More recourse never hurts, up to the documented dispatch slack."""
    inst = entry.instance
    budgets = (0.0, 1.0, 2.0, 4.0) if repacker == "greedy_consolidate" else (
        0.0, 0.25, 0.5, 1.0
    )
    costs = [
        repacking_run(_algo("first_fit"), inst, repacker=repacker, budget=b).cost
        for b in budgets
    ]
    for lo, hi in zip(costs[1:], costs[:-1]):
        assert lo <= hi * (1.0 + _MONOTONE_SLACK) + 1e-9, (
            f"{entry.recipe}/{repacker}: cost chain {costs} not weakly "
            f"monotone in budget (slack {_MONOTONE_SLACK:.0%})"
        )


@pytest.mark.parametrize("repacker,budget", [
    ("greedy_consolidate", 1.0),
    ("greedy_consolidate", 3.0),
    ("budgeted_rebalance", 0.5),
    ("budgeted_rebalance", 2.0),
])
@pytest.mark.parametrize("entry", CORPUS, ids=_ids(CORPUS))
def test_budget_k_runs_satisfy_all_invariants(repacker, budget, entry):
    """Full segment/capacity/cost/budget audit on every budget-k run."""
    result = repacking_run(
        _algo("best_fit"), entry.instance, repacker=repacker, budget=budget
    )
    assert audit_repacking(result) == []
    # the ledger never admitted more than the budget allows, and the
    # raw move log replays clean against the same budget
    assert replay_budget_check(
        result.moves, result.budget, result.mode, result.ledger.events
    ) == []
    if result.mode == "per_event":
        assert result.ledger.max_moves_per_event() <= int(budget)
    assert result.ledger.num_moves == result.num_moves


def test_repacking_actually_repacks_somewhere():
    """The corpus is not vacuous: budgeted runs move items and save cost."""
    moved = saved = 0
    for entry in CORPUS:
        base = run("first_fit", entry.instance)
        result = repacking_run(
            _algo("first_fit"), entry.instance,
            repacker="greedy_consolidate", budget=2.0,
        )
        moved += result.num_moves
        if result.cost < base.cost - 1e-9:
            saved += 1
    assert moved > 0
    assert saved > 0
