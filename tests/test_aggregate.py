"""Tests for sample aggregation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.aggregate import summarize
from repro.core.errors import ConfigurationError


class TestSummarize:
    def test_known_sample(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.std == pytest.approx(np.std([1, 2, 3, 4]))
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.median == pytest.approx(2.5)

    def test_single_value(self):
        s = summarize([7.0])
        assert s.mean == 7.0
        assert s.std == 0.0
        assert s.ci_halfwidth == 0.0

    def test_constant_sample(self):
        s = summarize([3.0] * 10)
        assert s.std == 0.0
        assert s.ci_low == s.ci_high == 3.0

    def test_quartiles_ordered(self):
        s = summarize(np.random.default_rng(0).normal(size=100))
        assert s.minimum <= s.q25 <= s.median <= s.q75 <= s.maximum

    def test_ci_contains_mean(self):
        s = summarize([1.0, 5.0, 9.0, 2.0])
        assert s.ci_low <= s.mean <= s.ci_high

    def test_ci_narrows_with_n(self):
        rng = np.random.default_rng(1)
        small = summarize(rng.normal(size=20))
        large = summarize(rng.normal(size=2000))
        assert large.ci_halfwidth < small.ci_halfwidth

    def test_confidence_levels(self):
        vals = list(np.random.default_rng(2).normal(size=50))
        assert (
            summarize(vals, confidence=0.99).ci_halfwidth
            > summarize(vals, confidence=0.90).ci_halfwidth
        )

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([1.0], confidence=0.5)

    def test_as_dict(self):
        d = summarize([1.0, 2.0]).as_dict()
        assert d["count"] == 2 and "ci_halfwidth" in d

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    @settings(max_examples=60)
    def test_mean_within_minmax(self, vals):
        s = summarize(vals)
        assert s.minimum - 1e-6 <= s.mean <= s.maximum + 1e-6


class TestBootstrapCI:
    def test_contains_mean_for_normal_sample(self):
        from repro.analysis.aggregate import bootstrap_ci

        vals = list(np.random.default_rng(0).normal(5.0, 1.0, size=100))
        lo, hi = bootstrap_ci(vals, seed=1)
        assert lo <= np.mean(vals) <= hi

    def test_reproducible(self):
        from repro.analysis.aggregate import bootstrap_ci

        vals = [1.0, 4.0, 2.0, 8.0, 3.0]
        assert bootstrap_ci(vals, seed=5) == bootstrap_ci(vals, seed=5)

    def test_single_value_degenerate(self):
        from repro.analysis.aggregate import bootstrap_ci

        assert bootstrap_ci([3.0]) == (3.0, 3.0)

    def test_narrows_with_n(self):
        from repro.analysis.aggregate import bootstrap_ci

        rng = np.random.default_rng(2)
        lo_s, hi_s = bootstrap_ci(list(rng.normal(size=20)), seed=0)
        lo_l, hi_l = bootstrap_ci(list(rng.normal(size=2000)), seed=0)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_validation(self):
        from repro.analysis.aggregate import bootstrap_ci
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            bootstrap_ci([])
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_skewed_sample_wider_upper_tail(self):
        from repro.analysis.aggregate import bootstrap_ci

        rng = np.random.default_rng(3)
        vals = list(rng.pareto(2.0, size=200))
        lo, hi = bootstrap_ci(vals, seed=0)
        m = float(np.mean(vals))
        assert (hi - m) > 0 and (m - lo) > 0
