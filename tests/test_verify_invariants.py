"""The invariant auditor: positive sweeps and engineered violations.

Positive direction: every (corpus instance, registry policy) run passes
the full audit.  Negative direction: hand-built broken packings — an
overloaded bin, a bin reused after going empty — must be flagged.  The
negative cases are the important half: an auditor that never fires is
indistinguishable from one that checks nothing (the harness's mutation
smoke-test keeps this property end-to-end; these tests keep it per
check).
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from repro.core.instance import Instance
from repro.core.packing import Packing
from repro.simulation.runner import run
from repro.verify.generators import corpus_list
from repro.verify.invariants import (
    FULL_LIST_POLICIES,
    THEOREM_BOUND_POLICIES,
    audit_instance,
    audit_run,
    check_capacity,
    check_half_open,
    check_opt_ordering,
    check_theorem_bound,
)


@pytest.mark.parametrize("policy", PAPER_ALGORITHMS)
def test_audit_passes_on_corpus(policy):
    for entry in corpus_list(11, seed=31):
        kwargs = {"seed": 0} if policy == "random_fit" else {}
        packing = run(make_algorithm(policy, **kwargs), entry.instance)
        violations = audit_run(packing, policy)
        assert violations == [], f"{entry.recipe}: {violations}"


def test_audit_instance_passes_on_corpus():
    for entry in corpus_list(11, seed=32):
        assert audit_instance(entry.instance) == []


def test_policy_partitions_are_consistent():
    assert FULL_LIST_POLICIES == set(PAPER_ALGORITHMS) - {"next_fit"}
    assert THEOREM_BOUND_POLICIES <= set(PAPER_ALGORITHMS)
    assert {"move_to_front", "first_fit", "next_fit"} == set(THEOREM_BOUND_POLICIES)


def test_capacity_flags_overloaded_bin():
    inst = Instance.from_tuples([(0.0, 2.0, [0.7]), (0.0, 2.0, [0.7])])
    broken = Packing.from_assignment(inst, {0: 0, 1: 0})
    violations = check_capacity(broken)
    assert violations and violations[0].check == "capacity"


def test_capacity_flags_single_dimension_overflow():
    """Overflow in the *second* dimension only (the broken-fit bug shape)."""
    inst = Instance.from_tuples([(0.0, 1.0, [0.2, 0.9]), (0.0, 1.0, [0.2, 0.9])])
    broken = Packing.from_assignment(inst, {0: 0, 1: 0})
    assert any(v.check == "capacity" for v in check_capacity(broken))


def test_half_open_flags_bin_reuse_after_close():
    inst = Instance.from_tuples([(0.0, 1.0, [0.5]), (2.0, 3.0, [0.5])])
    broken = Packing.from_assignment(inst, {0: 0, 1: 0})
    assert any(v.check == "no-reuse" for v in check_half_open(broken))


def test_half_open_allows_departure_arrival_tie():
    """An arrival at exactly a departure's time reuses the freed capacity.

    A long holder item keeps the bin open across the tie; items 1 and 2
    (size 0.7 each) can share the remaining 0.7 of capacity only if the
    half-open rule processes the departure first.
    """
    inst = Instance.from_tuples([
        (0.0, 2.0, [0.3]),  # holder
        (0.0, 1.0, [0.7]),
        (1.0, 2.0, [0.7]),  # arrives exactly as the previous departs
    ])
    packing = run(make_algorithm("first_fit"), inst)
    assert packing.num_bins == 1
    assert check_half_open(packing) == []
    assert check_capacity(packing) == []


@pytest.mark.parametrize("policy", sorted(THEOREM_BOUND_POLICIES))
def test_theorem_bound_holds_on_gadgets(policy):
    """Thm 2/3/4 upper bounds hold even on the lower-bound gadgets."""
    gadgets = [e for e in corpus_list(22, seed=31)
               if e.recipe.startswith(("theorem", "best_fit_trap"))]
    assert gadgets
    for entry in gadgets:
        packing = run(make_algorithm(policy), entry.instance)
        assert check_theorem_bound(packing, policy) == [], entry.recipe


def test_theorem_bound_flags_inflated_cost():
    """A one-item-per-bin assignment of many co-resident small items
    inflates cost far past the Theorem 2 bound — the auditor must fire."""
    n = 64
    inst = Instance.from_tuples([(0.0, 1.0, [1.0 / n]) for _ in range(n)])
    silly = Packing.from_assignment(inst, {i: i for i in range(n)})
    assert any(v.check == "theorem-bound"
               for v in check_theorem_bound(silly, "move_to_front"))


def test_opt_ordering_on_corpus():
    for entry in corpus_list(8, seed=33):
        assert check_opt_ordering(entry.instance) == []
