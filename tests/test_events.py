"""Unit tests for repro.core.events (ordering rules)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.events import Event, EventKind, event_stream, iter_arrivals
from repro.core.instance import Instance
from repro.core.items import Item


def test_stream_has_two_events_per_item(tiny_instance):
    events = event_stream(tiny_instance)
    assert len(events) == 2 * len(tiny_instance)


def test_events_sorted_by_time(tiny_instance):
    events = event_stream(tiny_instance)
    times = [e.time for e in events]
    assert times == sorted(times)


def test_departure_before_arrival_at_equal_time():
    # item 0 departs at t=1; item 1 arrives at t=1
    inst = Instance(
        [Item(0, 1, np.array([0.6]), 0), Item(1, 2, np.array([0.6]), 1)]
    )
    events = event_stream(inst)
    at_one = [e for e in events if e.time == 1.0]
    assert [e.kind for e in at_one] == [EventKind.DEPARTURE, EventKind.ARRIVAL]


def test_simultaneous_arrivals_keep_instance_order():
    inst = Instance(
        [
            Item(0, 1, np.array([0.1]), 0),
            Item(0, 1, np.array([0.2]), 1),
            Item(0, 1, np.array([0.3]), 2),
        ]
    )
    arrivals = [e for e in event_stream(inst) if e.kind is EventKind.ARRIVAL]
    assert [e.item.uid for e in arrivals] == [0, 1, 2]


def test_simultaneous_departures_ordered_by_uid():
    inst = Instance(
        [Item(0, 2, np.array([0.1]), 0), Item(1, 2, np.array([0.2]), 1)]
    )
    departures = [e for e in event_stream(inst) if e.kind is EventKind.DEPARTURE]
    assert [e.item.uid for e in departures] == [0, 1]


def test_iter_arrivals_matches_instance_order(uniform_small):
    uids = [it.uid for it in iter_arrivals(uniform_small)]
    assert uids == [it.uid for it in uniform_small.items]


def test_event_requires_item():
    with pytest.raises(ValueError):
        Event(0.0, EventKind.ARRIVAL, 0, None)


def test_event_kind_ordering():
    assert EventKind.DEPARTURE < EventKind.ARRIVAL
