"""Property-based tests (hypothesis) over random instances.

Invariants checked for every Any Fit algorithm on arbitrary generated
instances:

* the packing is temporally feasible (full audit);
* the cost equals the sum of bin usage periods and is bounded below by
  every Lemma 1 lower bound;
* span <= cost <= n * mu-ish trivial upper bound;
* determinism: running twice yields the identical packing;
* the Any Fit property (full-list algorithms).
"""

from __future__ import annotations

from typing import List

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from repro.core.instance import Instance
from repro.core.items import Item
from repro.optimum.lower_bounds import all_lower_bounds
from repro.simulation.runner import run
from tests.test_anyfit_property import FULL_LIST_ALGORITHMS, assert_any_fit_property


@st.composite
def instances(draw, max_items: int = 25, max_d: int = 3):
    """Random valid instances with rational-ish times and sizes."""
    d = draw(st.integers(1, max_d))
    n = draw(st.integers(1, max_items))
    items: List[Item] = []
    for uid in range(n):
        arrival = draw(st.integers(0, 30)) / 2.0
        duration = draw(st.integers(1, 20)) / 2.0
        size = np.array(
            [draw(st.integers(1, 100)) / 100.0 for _ in range(d)]
        )
        items.append(Item(arrival, arrival + duration, size, uid))
    items.sort(key=lambda it: it.arrival)
    items = [it.with_uid(i) for i, it in enumerate(items)]
    return Instance(items)


COMMON = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
class TestUniversalInvariants:
    @given(inst=instances())
    @settings(**COMMON)
    def test_packing_is_feasible(self, algorithm, inst):
        run(make_algorithm(algorithm), inst, validate=True)

    @given(inst=instances())
    @settings(**COMMON)
    def test_cost_dominates_all_lower_bounds(self, algorithm, inst):
        packing = run(make_algorithm(algorithm), inst)
        for name, bound in all_lower_bounds(inst).items():
            assert packing.cost >= bound - 1e-6, f"cost below {name} bound"

    @given(inst=instances())
    @settings(**COMMON)
    def test_cost_at_most_sum_of_windows(self, algorithm, inst):
        # trivial upper bound: every bin's usage is within the horizon,
        # and there are at most n bins
        packing = run(make_algorithm(algorithm), inst)
        assert packing.num_bins <= inst.n
        assert packing.cost <= inst.n * inst.horizon.length + 1e-9

    @given(inst=instances(max_items=15))
    @settings(**COMMON)
    def test_deterministic(self, algorithm, inst):
        p1 = run(make_algorithm(algorithm), inst)
        p2 = run(make_algorithm(algorithm), inst)
        assert p1.assignment == p2.assignment

    @given(inst=instances(max_items=15))
    @settings(**COMMON)
    def test_single_item_per_uid(self, algorithm, inst):
        packing = run(make_algorithm(algorithm), inst)
        uids = [u for rec in packing.bins for u in rec.item_uids]
        assert sorted(uids) == sorted(it.uid for it in inst.items)


@pytest.mark.parametrize("algorithm", FULL_LIST_ALGORITHMS)
class TestAnyFitPropertyRandom:
    @given(inst=instances(max_items=20))
    @settings(**COMMON)
    def test_any_fit_property(self, algorithm, inst):
        packing = run(make_algorithm(algorithm), inst)
        assert_any_fit_property(packing)


class TestStructuralProperties:
    @given(inst=instances(max_items=20))
    @settings(max_examples=25, deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.too_slow])
    def test_next_fit_uses_at_least_as_many_bins_as_first_fit_opens(self, inst):
        """NF's single-candidate list fragments more: it opens at least
        as many bins as FF on every input we generate.  (This is an
        empirical regularity, not a theorem, hence the derandomized
        example set - 300 extra random instances were also checked
        offline with zero violations.)"""
        nf = run(make_algorithm("next_fit"), inst)
        ff = run(make_algorithm("first_fit"), inst)
        assert nf.num_bins >= ff.num_bins

    @given(inst=instances(max_items=20))
    @settings(**COMMON)
    def test_mf_leading_partition(self, inst):
        from repro.algorithms.move_to_front import MoveToFront
        from repro.simulation.engine import Engine
        from repro.simulation.instrumentation import LeaderTracker

        tracker = LeaderTracker()
        packing = Engine(inst, MoveToFront(), observers=[tracker]).run()
        total = sum(
            iv.length for ivs in tracker.leading_intervals().values() for iv in ivs
        )
        assert total == pytest.approx(inst.span, rel=1e-9, abs=1e-9)

    @given(inst=instances(max_items=12))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_theorem2_bound_holds_against_exact_opt(self, inst):
        """cost(MF) <= ((2mu+1)d + 1) * OPT — the headline Theorem 2,
        checked against the exact optimum on small instances."""
        from repro.optimum.opt_cost import optimum_cost

        packing = run(make_algorithm("move_to_front"), inst)
        opt = optimum_cost(inst)
        mu, d = inst.mu, inst.d
        assert packing.cost <= ((2 * mu + 1) * d + 1) * opt + 1e-6

    @given(inst=instances(max_items=12))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_theorem3_and_4_bounds_hold_against_exact_opt(self, inst):
        from repro.optimum.opt_cost import optimum_cost

        opt = optimum_cost(inst)
        mu, d = inst.mu, inst.d
        ff = run(make_algorithm("first_fit"), inst)
        assert ff.cost <= ((mu + 2) * d + 1) * opt + 1e-6
        nf = run(make_algorithm("next_fit"), inst)
        assert nf.cost <= (2 * mu * d + 1) * opt + 1e-6
