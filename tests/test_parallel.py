"""Tests for the parallel sweep executor."""

from __future__ import annotations

import pytest

from repro.simulation.parallel import parallel_sweep, simulate_unit
from repro.simulation.runner import run
from repro.workloads.base import generate_batch
from repro.workloads.uniform import UniformWorkload

ALGOS = ["move_to_front", "first_fit"]


@pytest.fixture(scope="module")
def batch():
    gen = UniformWorkload(d=2, n=40, mu=5, T=30, B=10)
    return generate_batch(gen, 6, seed=0)


class TestSerialPath:
    def test_results_match_direct_runs(self, batch):
        results = parallel_sweep(ALGOS, batch, processes=0)
        for name in ALGOS:
            assert len(results[name]) == len(batch)
            for res, inst in zip(results[name], batch):
                direct = run(name, inst)
                assert res.cost == pytest.approx(direct.cost)
                assert res.num_bins == direct.num_bins

    def test_ratio_property(self, batch):
        results = parallel_sweep(ALGOS, batch, processes=0)
        for res in results["move_to_front"]:
            assert res.ratio == pytest.approx(res.cost / res.lower_bound)
            assert res.ratio >= 1.0 - 1e-9

    def test_ordered_by_instance_index(self, batch):
        results = parallel_sweep(ALGOS, batch, processes=0)
        for name in ALGOS:
            indices = [r.instance_index for r in results[name]]
            assert indices == sorted(indices)

    def test_algorithm_kwargs_forwarded(self, batch):
        a = parallel_sweep(["random_fit"], batch, processes=0,
                           algorithm_kwargs={"random_fit": {"seed": 1}})
        b = parallel_sweep(["random_fit"], batch, processes=0,
                           algorithm_kwargs={"random_fit": {"seed": 1}})
        costs_a = [r.cost for r in a["random_fit"]]
        costs_b = [r.cost for r in b["random_fit"]]
        assert costs_a == costs_b


class TestUnitWorker:
    def test_unit_is_self_contained(self, batch):
        from repro.optimum.lower_bounds import height_lower_bound

        inst = batch[0]
        payload = ("first_fit", {}, 0, inst.to_dict(), height_lower_bound(inst))
        res = simulate_unit(payload)
        assert res.algorithm == "first_fit"
        assert res.cost == pytest.approx(run("first_fit", inst).cost)


class TestProcessPath:
    def test_multiprocess_matches_serial(self, batch):
        serial = parallel_sweep(ALGOS, batch, processes=0)
        parallel = parallel_sweep(ALGOS, batch, processes=2)
        for name in ALGOS:
            assert [r.cost for r in parallel[name]] == pytest.approx(
                [r.cost for r in serial[name]]
            )
