"""Tests for the parallel sweep executor."""

from __future__ import annotations

import math

import pytest

from repro.simulation.parallel import (
    UnitResult,
    algorithm_accepts_seed,
    build_payloads,
    derive_unit_seeds,
    parallel_sweep,
    simulate_unit,
    unit_key,
)
from repro.simulation.runner import run
from repro.workloads.base import generate_batch
from repro.workloads.uniform import UniformWorkload

ALGOS = ["move_to_front", "first_fit"]


@pytest.fixture(scope="module")
def batch():
    gen = UniformWorkload(d=2, n=40, mu=5, T=30, B=10)
    return generate_batch(gen, 6, seed=0)


class TestSerialPath:
    def test_results_match_direct_runs(self, batch):
        results = parallel_sweep(ALGOS, batch, processes=0)
        for name in ALGOS:
            assert len(results[name]) == len(batch)
            for res, inst in zip(results[name], batch):
                direct = run(name, inst)
                assert res.cost == pytest.approx(direct.cost)
                assert res.num_bins == direct.num_bins

    def test_ratio_property(self, batch):
        results = parallel_sweep(ALGOS, batch, processes=0)
        for res in results["move_to_front"]:
            assert res.ratio == pytest.approx(res.cost / res.lower_bound)
            assert res.ratio >= 1.0 - 1e-9

    def test_ordered_by_instance_index(self, batch):
        results = parallel_sweep(ALGOS, batch, processes=0)
        for name in ALGOS:
            indices = [r.instance_index for r in results[name]]
            assert indices == sorted(indices)

    def test_algorithm_kwargs_forwarded(self, batch):
        a = parallel_sweep(["random_fit"], batch, processes=0,
                           algorithm_kwargs={"random_fit": {"seed": 1}})
        b = parallel_sweep(["random_fit"], batch, processes=0,
                           algorithm_kwargs={"random_fit": {"seed": 1}})
        costs_a = [r.cost for r in a["random_fit"]]
        costs_b = [r.cost for r in b["random_fit"]]
        assert costs_a == costs_b


class TestUnitWorker:
    def test_unit_is_self_contained(self, batch):
        from repro.optimum.lower_bounds import height_lower_bound

        inst = batch[0]
        payload = ("first_fit", {}, 0, inst.to_dict(), height_lower_bound(inst))
        res = simulate_unit(payload)
        assert res.algorithm == "first_fit"
        assert res.cost == pytest.approx(run("first_fit", inst).cost)


class TestProcessPath:
    def test_multiprocess_matches_serial(self, batch):
        serial = parallel_sweep(ALGOS, batch, processes=0)
        parallel = parallel_sweep(ALGOS, batch, processes=2)
        for name in ALGOS:
            assert [r.cost for r in parallel[name]] == pytest.approx(
                [r.cost for r in serial[name]]
            )


class TestRatioDegenerate:
    """Regression: ratio on a zero lower bound raised ZeroDivisionError."""

    def _unit(self, cost, lb):
        return UnitResult(algorithm="first_fit", instance_index=0,
                          cost=cost, num_bins=1, lower_bound=lb)

    def test_zero_lower_bound_positive_cost_is_inf(self):
        assert self._unit(5.0, 0.0).ratio == math.inf

    def test_zero_lower_bound_zero_cost_is_neutral(self):
        assert self._unit(0.0, 0.0).ratio == 1.0

    def test_normal_ratio_unchanged(self):
        assert self._unit(6.0, 3.0).ratio == pytest.approx(2.0)


class TestPerUnitSeeds:
    """Regression: every random_fit unit used to share one base seed,
    collapsing the m "independent" trials of a cell onto one stream."""

    def test_derive_unit_seeds_is_pure_and_pinned(self):
        # golden pins: numpy SeedSequence spawning is stable across
        # platforms, and sweeps' bit-identity depends on this derivation
        assert derive_unit_seeds(0, 4) == [
            8668861027912758289,
            4881901421217228719,
            16452687389592421897,
            13238389300853459902,
        ]
        assert derive_unit_seeds(0, 4) == derive_unit_seeds(0, 4)
        assert len(set(derive_unit_seeds(0, 64))) == 64

    def test_seed_detection(self):
        assert algorithm_accepts_seed("random_fit")
        assert not algorithm_accepts_seed("first_fit")
        assert not algorithm_accepts_seed("not_a_policy")

    def test_payloads_carry_per_unit_seeds(self, batch):
        payloads = build_payloads(["random_fit"], batch,
                                  {"random_fit": {"seed": 1}})
        seeds = [p[1]["seed"] for p in payloads]
        assert seeds == derive_unit_seeds(1, len(batch))
        assert len(set(seeds)) == len(batch)
        assert [unit_key(p) for p in payloads] == [
            ("random_fit", i) for i in range(len(batch))
        ]

    def test_identical_instances_draw_independent_streams(self, batch):
        # the same instance twice must not produce forced-identical runs
        dup = [batch[0], batch[0]]
        res = parallel_sweep(["random_fit"], dup, processes=0,
                             algorithm_kwargs={"random_fit": {"seed": 0}})
        costs = [r.cost for r in res["random_fit"]]
        assert costs == [111.0, 112.0]  # golden: distinct streams

    def test_golden_sweep_costs(self, batch):
        # pins the post-fix per-unit-seed behaviour end to end
        res = parallel_sweep(["random_fit"], batch, processes=0,
                             algorithm_kwargs={"random_fit": {"seed": 1}})
        assert [r.cost for r in res["random_fit"]] == [
            111.0, 104.0, 121.0, 113.0, 95.0, 113.0,
        ]
