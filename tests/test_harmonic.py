"""Tests for the Harmonic-style size-classified baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.harmonic import HarmonicFit
from repro.core.errors import ConfigurationError
from repro.core.instance import Instance
from repro.core.items import Item
from repro.simulation.engine import simulate
from repro.simulation.runner import run
from repro.workloads.uniform import UniformWorkload


def seq_1d(sizes, horizon=10.0):
    return Instance(
        [Item(0.0, horizon, np.array([s]), uid=i) for i, s in enumerate(sizes)]
    )


class TestClassification:
    def test_valid_packing(self, uniform_small):
        run(HarmonicFit(), uniform_small, validate=True)

    def test_classes_never_mix(self):
        # class 1: size in (1/2, 1]; class 2: size in (1/3, 1/2]
        packing = simulate(HarmonicFit(num_classes=5), seq_1d([0.6, 0.4, 0.6, 0.4]))
        by_uid = {it.uid: it for it in packing.instance.items}
        for rec in packing.bins:
            classes = {int(1.0 / by_uid[u].size[0]) for u in rec.item_uids}
            assert len(classes) == 1

    def test_class_c_bins_hold_c_items(self):
        # four 0.25-items (class 4) share one bin
        packing = simulate(HarmonicFit(), seq_1d([0.25, 0.25, 0.25, 0.25]))
        assert packing.num_bins == 1

    def test_residual_class_packs_first_fit(self):
        # with num_classes=2, items of size 0.1 all land in the residual
        # class and share bins greedily
        packing = simulate(HarmonicFit(num_classes=2), seq_1d([0.1] * 9))
        assert packing.num_bins == 1

    def test_big_items_one_per_bin(self):
        packing = simulate(HarmonicFit(), seq_1d([0.9, 0.8, 0.7]))
        assert packing.num_bins == 3

    def test_classification_uses_normalised_demand(self):
        # capacity 100; size 60 is class 1, size 40 class 2
        inst = Instance(
            [Item(0, 5, np.array([60.0]), 0), Item(0, 5, np.array([40.0]), 1)],
            capacity=100.0,
        )
        packing = simulate(HarmonicFit(), inst)
        assert packing.num_bins == 2  # 60+40 would fit, but classes differ

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HarmonicFit(num_classes=0)


class TestBehaviour:
    def test_registered(self):
        from repro.algorithms.registry import make_algorithm

        algo = make_algorithm("harmonic_fit", num_classes=3)
        assert algo.num_classes == 3

    def test_opens_more_bins_than_first_fit(self):
        """Size classification can only fragment relative to FF."""
        inst = UniformWorkload(d=2, n=150, mu=10, T=60, B=10).sample_seeded(1)
        hf = run(HarmonicFit(), inst)
        ff = run("first_fit", inst)
        assert hf.num_bins >= ff.num_bins

    def test_multi_dim_classifies_by_max_demand(self):
        inst = Instance(
            [
                Item(0, 5, np.array([0.6, 0.1]), 0),  # class 1 (max 0.6)
                Item(0, 5, np.array([0.1, 0.3]), 1),  # class 3 (max 0.3)
            ]
        )
        packing = simulate(HarmonicFit(), inst)
        assert packing.num_bins == 2
