"""Tests for the resource-augmentation analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.augmentation import (
    augmentation_curve,
    augmented_instance,
    augmented_run,
)
from repro.workloads.adversarial import theorem5_instance, theorem8_instance
from repro.workloads.uniform import UniformWorkload


class TestAugmentedInstance:
    def test_capacity_scaled(self, uniform_small):
        aug = augmented_instance(uniform_small, 0.5)
        assert np.allclose(aug.capacity, uniform_small.capacity * 1.5)
        assert aug.n == uniform_small.n

    def test_zero_beta_identity(self, uniform_small):
        aug = augmented_instance(uniform_small, 0.0)
        assert np.allclose(aug.capacity, uniform_small.capacity)

    def test_negative_beta_rejected(self, uniform_small):
        with pytest.raises(ValueError):
            augmented_instance(uniform_small, -0.1)


class TestAugmentedRuns:
    def test_augmentation_never_hurts_in_aggregate(self, uniform_small):
        """More capacity per bin can't systematically hurt First Fit -
        the beta=1 cost should be at most the beta=0 cost on a dense
        instance (FF fills bins greedily)."""
        base = augmented_run("first_fit", uniform_small, 0.0)
        big = augmented_run("first_fit", uniform_small, 1.0)
        assert big.cost <= base.cost + 1e-9

    def test_curve_monotone_for_first_fit(self):
        inst = UniformWorkload(d=2, n=150, mu=10, T=60, B=10).sample_seeded(2)
        points = augmentation_curve("first_fit", inst, betas=(0.0, 0.5, 1.0))
        ratios = [p.ratio for p in points]
        assert ratios == sorted(ratios, reverse=True)

    def test_theorem5_collapses_under_tiny_augmentation(self):
        """The Theorem 5 trap runs each bin at exactly 1 - eps' load; a
        sliver of extra capacity lets the small R1 items share bins and
        the certified ratio collapses."""
        adv = theorem5_instance(d=2, k=4, mu=5.0)
        base = augmented_run("first_fit", adv.instance, 0.0)
        aug = augmented_run("first_fit", adv.instance, 0.1)
        assert aug.cost < 0.6 * base.cost

    def test_theorem8_collapses_under_augmentation(self):
        adv = theorem8_instance(n=6, mu=5.0)
        base = augmented_run("move_to_front", adv.instance, 0.0)
        aug = augmented_run("move_to_front", adv.instance, 0.25)
        assert aug.cost < base.cost

    def test_ratio_uses_unaugmented_baseline(self, uniform_small):
        points = augmentation_curve("first_fit", uniform_small, betas=(0.0, 1.0))
        assert points[0].baseline_lower_bound == points[1].baseline_lower_bound
