"""Figure 4 regeneration bench: average-case performance sweep.

One bench per ``d`` panel.  Each run executes the full μ-sweep for that
panel at quick scale (same grid as the paper, smaller ``n``/``m``; pass
``--paper-scale`` for the full Table 2 configuration) and prints the
mean±std series — the rows behind the paper's 18-panel figure.

Shape assertions: every ratio ≥ 1; Move To Front within 1% of the best
mean in every cell; Next Fit's gap to MF grows with μ.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import FULL, QUICK
from repro.experiments.figure4 import render_figure4, run_figure4


def _config(paper_scale: bool, d: int):
    base = FULL if paper_scale else QUICK.scaled(n=300, m=10)
    return type(base)(
        d_values=(d,),
        mu_values=base.mu_values,
        n=base.n,
        T=base.T,
        B=base.B,
        m=base.m,
        seed=base.seed,
    )


def _check_shape(result, d: int) -> None:
    mus = result.config.mu_values
    for mu in mus:
        cell = result.cells[(d, mu)]
        best = cell.stats[cell.ranking()[0]].mean
        mf = cell.stats["move_to_front"].mean
        assert mf >= 1.0 - 1e-9
        assert mf <= 1.01 * best, f"MF not near-best at d={d}, mu={mu}"
    nf_gap = [
        result.cells[(d, mu)].stats["next_fit"].mean
        / result.cells[(d, mu)].stats["move_to_front"].mean
        for mu in mus
    ]
    assert nf_gap[-1] > nf_gap[0], "NF should degrade relative to MF as mu grows"


@pytest.mark.parametrize("d", [1, 2, 5])
def test_figure4_panel(benchmark, paper_scale, d):
    config = _config(paper_scale, d)
    result = benchmark.pedantic(
        run_figure4, kwargs={"config": config}, rounds=1, iterations=1
    )
    _check_shape(result, d)
    print()
    print(render_figure4(result))
