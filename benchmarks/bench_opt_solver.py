"""Optimum-machinery benches: exact VBP solver and the Eq. 2 integral.

Not a paper artefact by itself, but the denominator of every reported
ratio: these benches pin the cost of the exact solver (small instances)
and the polynomial bracket (paper-scale instances), and assert the
bracket stays tight on random workloads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.optimum.lower_bounds import height_lower_bound
from repro.optimum.opt_cost import optimum_cost, optimum_cost_bounds
from repro.optimum.vbp_solver import first_fit_decreasing, solve_exact
from repro.workloads.uniform import UniformWorkload


@pytest.mark.parametrize("n_items", [8, 12, 16])
def test_exact_vbp_solver(benchmark, n_items):
    rng = np.random.default_rng(n_items)
    sizes = [rng.uniform(0.05, 0.7, size=2) for _ in range(n_items)]
    cap = np.ones(2)
    opt = benchmark(solve_exact, sizes, cap)
    assert 1 <= opt <= len(first_fit_decreasing(sizes, cap))


def test_exact_optimum_integral_small(benchmark):
    inst = UniformWorkload(d=2, n=20, mu=4, T=15, B=4).sample_seeded(0)
    opt = benchmark(optimum_cost, inst)
    assert opt >= inst.span - 1e-9


def test_optimum_bracket_paper_scale(benchmark):
    inst = UniformWorkload(d=2, n=1000, mu=10, T=1000, B=100).sample_seeded(1)
    lo, hi = benchmark(optimum_cost_bounds, inst)
    assert lo <= hi
    # FFD per segment stays within ~20% of the load bound on the uniform
    # workload (the gap is widest when few bins are concurrently active,
    # where a single FFD overage is a large relative error)
    assert hi / lo < 1.25
    assert lo == pytest.approx(height_lower_bound(inst), rel=1e-6)
