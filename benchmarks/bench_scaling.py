"""Scaling ablation: simulation throughput vs instance size and policy.

Validates the vectorised fit-check path (DESIGN.md §5) stays the hot
loop: cost per simulated item should grow sub-quadratically in ``n`` for
list-scanning policies, and the engine should handle paper-scale
instances (n = 1000) in tens of milliseconds.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from repro.simulation.runner import run
from repro.workloads.uniform import UniformWorkload


@pytest.mark.parametrize("n", [100, 500, 1000])
def test_simulation_scaling_in_n(benchmark, n):
    inst = UniformWorkload(d=2, n=n, mu=10, T=1000, B=100).sample_seeded(0)
    algo = make_algorithm("move_to_front")
    packing = benchmark(run, algo, inst)
    assert packing.num_bins > 0


@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
def test_simulation_throughput_per_policy(benchmark, algorithm):
    inst = UniformWorkload(d=2, n=500, mu=20, T=500, B=100).sample_seeded(1)
    algo = make_algorithm(algorithm)
    packing = benchmark(run, algo, inst)
    assert packing.num_bins > 0


@pytest.mark.parametrize("d", [1, 2, 5, 10])
def test_simulation_scaling_in_d(benchmark, d):
    inst = UniformWorkload(d=d, n=500, mu=10, T=500, B=100).sample_seeded(2)
    algo = make_algorithm("first_fit")
    packing = benchmark(run, algo, inst)
    assert packing.num_bins > 0


def test_lower_bound_sweepline_paper_scale(benchmark):
    from repro.optimum.lower_bounds import height_lower_bound

    inst = UniformWorkload(d=5, n=1000, mu=100, T=1000, B=100).sample_seeded(3)
    lb = benchmark(height_lower_bound, inst)
    assert lb > 0
