"""Quantised-billing ablation ("pay-as-you-go is hourly", Section 1).

Measures each policy's bill under increasingly coarse billing quanta and
the gain from the quantum-aware Move To Front variant.  Shape
assertions: bills grow with the quantum; the ranking of the continuous
objective carries over approximately; quantum-aware MF never loses to
plain MF under its own billing model (in aggregate).
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.simulation.billing import QuantumAwareMoveToFront, billed_cost
from repro.simulation.runner import run
from repro.workloads.base import generate_batch
from repro.workloads.uniform import UniformWorkload

QUANTA = (0.0, 1.0, 5.0, 20.0)
ALGOS = ("move_to_front", "first_fit", "next_fit")


def test_billing_quanta(benchmark):
    instances = generate_batch(
        UniformWorkload(d=2, n=300, mu=20, T=200, B=100), 6, seed=0
    )

    def measure():
        bills = {algo: {q: 0.0 for q in QUANTA} for algo in ALGOS}
        bills["quantum_aware_mf(q=5)"] = {q: 0.0 for q in QUANTA}
        for inst in instances:
            for algo in ALGOS:
                packing = run(algo, inst)
                for q in QUANTA:
                    bills[algo][q] += billed_cost(packing, q)
            aware = run(QuantumAwareMoveToFront(quantum=5.0), inst)
            for q in QUANTA:
                bills["quantum_aware_mf(q=5)"][q] += billed_cost(aware, q)
        return bills

    bills = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [[name] + [vals[q] for q in QUANTA] for name, vals in bills.items()]
    print()
    print(format_table(
        ["policy"] + [f"q={q:g}" for q in QUANTA], rows,
        title="Total bill vs billing quantum (uniform, d=2, mu=20, 6 instances)",
    ))

    for name, vals in bills.items():
        series = [vals[q] for q in QUANTA]
        assert series == sorted(series), f"{name}: bill should grow with quantum"
    # quantum-aware MF doesn't lose to plain MF at its design quantum
    assert bills["quantum_aware_mf(q=5)"][5.0] <= bills["move_to_front"][5.0] * 1.05
    # NF still worst under coarse billing
    assert bills["next_fit"][20.0] >= bills["move_to_front"][20.0]
