"""Online-vs-offline ablation: the price of being online / of no repacking.

Quantifies the ladder ``repack-OPT ≤ no-repack optimum ≤ best online``
on random workloads: the offline no-repack heuristics (marginal-cost
greedy, local search) sit between the repack bracket and the online Any
Fit costs, and the gap between online MF and the offline greedy is the
measured "price of being online" on the uniform workload.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.optimum.offline_assignment import greedy_assignment, local_search
from repro.optimum.opt_cost import optimum_cost_bounds
from repro.simulation.runner import run
from repro.workloads.base import generate_batch
from repro.workloads.uniform import UniformWorkload


def test_online_vs_offline_ladder(benchmark):
    instances = generate_batch(
        UniformWorkload(d=2, n=200, mu=20, T=200, B=100), 5, seed=0
    )

    def measure():
        rows = []
        for inst in instances:
            opt_lo, opt_hi = optimum_cost_bounds(inst)
            rows.append(
                {
                    "opt_lo": opt_lo,
                    "opt_hi": opt_hi,
                    "offline_greedy": greedy_assignment(inst).cost,
                    "offline_ls": local_search(inst, max_rounds=3).cost,
                    "online_mf": run("move_to_front", inst).cost,
                    "online_ff": run("first_fit", inst).cost,
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    for r in rows:
        # soundness ladder
        assert r["opt_lo"] <= r["opt_hi"] + 1e-9
        assert r["offline_ls"] <= r["offline_greedy"] + 1e-9
        assert r["offline_greedy"] >= r["opt_lo"] - 1e-9
        assert r["online_mf"] >= r["opt_lo"] - 1e-9

    table = [
        [i, r["opt_lo"], r["opt_hi"], r["offline_ls"], r["offline_greedy"],
         r["online_mf"], r["online_ff"]]
        for i, r in enumerate(rows)
    ]
    print()
    print(format_table(
        ["inst", "repack lo", "repack hi", "offline LS", "offline greedy",
         "online MF", "online FF"],
        table,
        title="Price of being online (uniform workload, d=2, mu=20)",
    ))
    avg_gap = sum(r["online_mf"] / r["offline_greedy"] for r in rows) / len(rows)
    print(f"\nmean online-MF / offline-greedy cost ratio: {avg_gap:.3f}")
