"""Resource-augmentation ablation.

How much extra per-bin capacity buys back the online-vs-OPT gap, on both
the average case (uniform workload) and the knife-edge adversarial
constructions (which collapse under slivers of augmentation).
"""

from __future__ import annotations

import pytest

from repro.analysis.augmentation import augmentation_curve, augmented_run
from repro.analysis.report import format_table
from repro.workloads.adversarial import theorem5_instance
from repro.workloads.uniform import UniformWorkload

BETAS = (0.0, 0.05, 0.1, 0.25, 0.5, 1.0)


def test_augmentation_average_case(benchmark):
    inst = UniformWorkload(d=2, n=500, mu=20, T=500, B=100).sample_seeded(0)

    def curves():
        return {
            algo: augmentation_curve(algo, inst, betas=BETAS)
            for algo in ("move_to_front", "first_fit", "next_fit")
        }

    results = benchmark.pedantic(curves, rounds=1, iterations=1)
    rows = []
    for algo, points in results.items():
        rows.append([algo] + [p.ratio for p in points])
        ratios = [p.ratio for p in points]
        assert ratios == sorted(ratios, reverse=True), f"{algo} curve not monotone"
    print()
    print(format_table(
        ["algorithm"] + [f"beta={b:g}" for b in BETAS], rows,
        title="Resource augmentation: cost / capacity-1 LB (uniform, d=2, mu=20)",
    ))


def test_augmentation_collapses_adversarial(benchmark):
    adv = theorem5_instance(d=2, k=8, mu=5.0)

    def measure():
        return {
            beta: augmented_run("first_fit", adv.instance, beta).cost
            for beta in BETAS
        }

    costs = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[f"beta={b:g}", costs[b], costs[b] / adv.opt_upper] for b in BETAS]
    print()
    print(format_table(
        ["augmentation", "FF cost", "vs OPT(cap 1) upper"], rows,
        title=f"Theorem 5 family (d=2, k=8, mu=5) under augmentation",
    ))
    # the knife-edge construction collapses with 10% extra capacity
    assert costs[0.1] < 0.6 * costs[0.0]
