"""Empirical competitive-ratio search bench.

Hunts for bad instances for each bounded algorithm and reports the worst
certified ratio found next to the theoretical lower/upper bounds at the
instance's ``(μ, d)`` — a regression net: the search must find ratios
well above the average case, and must never certify a ratio above a
proven upper bound.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.competitive import random_search
from repro.analysis.report import format_table
from repro.analysis.theory import TABLE1, lower_bound, upper_bound

ALGOS = ["move_to_front", "first_fit", "next_fit", "best_fit"]


def test_competitive_search(benchmark, paper_scale):
    budget = (800, 400) if paper_scale else (120, 60)

    def hunt():
        return {
            algo: random_search(
                algo, d=1, n=12, mu=5.0,
                budget=budget[0], hill_climb=budget[1], seed=11,
            )
            for algo in ALGOS
        }

    results = benchmark.pedantic(hunt, rounds=1, iterations=1)

    rows = []
    for algo, res in results.items():
        mu, d = res.instance.mu, res.instance.d
        lo = lower_bound(algo, mu, d) if algo in TABLE1 else float("nan")
        up = upper_bound(algo, mu, d) if algo in TABLE1 else float("nan")
        if not math.isinf(up):
            assert res.ratio <= up + 1e-6, f"{algo} certified ratio above proven bound"
        assert res.ratio > 1.15, f"{algo}: search failed to beat the average case"
        rows.append([
            algo,
            res.ratio,
            "unbounded" if math.isinf(lo) else f"{lo:.1f}",
            "unbounded" if math.isinf(up) else f"{up:.1f}",
            res.evaluations,
        ])
    print()
    print(format_table(
        ["algorithm", "worst certified ratio", "theory LB(mu,d)",
         "theory UB(mu,d)", "evals"],
        rows,
        title="Empirical bad-instance search (certified CR lower bounds)",
    ))
