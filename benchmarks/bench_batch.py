#!/usr/bin/env python
"""Batched-sweep benchmark: per-unit dispatch vs BatchRunner, merged into BENCH_core.json.

Runs the pinned-seed batched-sweep grid (Table-2-sized cells, n = 1000,
d ∈ {1, 2} × μ ∈ {10, 100}, m instances each) through all seven Any Fit
policies twice: once as per-unit fastpath dispatch
(``parallel_sweep(engine="fast")`` — one worker unit per (algorithm,
instance), each rebuilding the event index and lower bound) and once
through ``parallel_sweep(engine="batch")`` fed compact
:class:`~repro.simulation.batch.InstanceSpec` sources — one
:class:`~repro.simulation.batch.BatchRunner` pass per instance sharing
the replay context, the fast engine's scratch buffers, and the Lemma 1
bound across the whole policy fan-out.  Each cell re-asserts the
bit-identity contract (the ``identical`` flag) and a ``trials``
sub-benchmark times batched seeded ``random_fit`` replays.

The payload nests under the ``"batch"`` key of ``BENCH_core.json`` when
that file already holds a core-suite payload, so one file carries the
whole perf trajectory.  The headline (grid totals) is the acceptance
number: the batched path must stay >= 3x over per-unit fastpath
dispatch.  The payload also records the per-object memory the
``__slots__`` satellite buys on hot per-event objects (``item_memory``).

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_batch.py            # full grid
    PYTHONPATH=src python benchmarks/bench_batch.py --smoke    # seconds-fast

Equivalent CLI form: ``python -m repro bench --suite batch``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

# Allow running as a plain script from a checkout without installing.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.observability.bench import (  # noqa: E402
    BATCH_SCENARIOS,
    BATCH_SMOKE_SCENARIOS,
    merge_suite,
    run_batch_suite,
    write_bench,
)
from repro.observability.bench import SCHEMA as _CORE_SCHEMA  # noqa: E402

_DEFAULT_OUTPUT = os.path.join(_REPO_ROOT, "BENCH_core.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the seconds-fast smoke grid instead of the full one")
    parser.add_argument("--repeats", type=int, default=3,
                        help="sweep runs per (scenario, side); wall-time is the min")
    parser.add_argument("--output", default=_DEFAULT_OUTPUT,
                        help="output JSON path (default: BENCH_core.json at the repo root)")
    args = parser.parse_args(argv)

    scenarios = BATCH_SMOKE_SCENARIOS if args.smoke else BATCH_SCENARIOS
    suite = "batch-smoke" if args.smoke else "batch"
    print(f"running {suite} suite ({len(scenarios)} scenarios, "
          f"repeats={args.repeats}) ...")
    payload = run_batch_suite(
        scenarios=scenarios,
        repeats=args.repeats,
        suite=suite,
        progress=print,
    )

    # Nest under the core payload when the output file already holds one
    # (an existing "fastpath" record rides along untouched).
    existing = None
    if os.path.exists(args.output):
        try:
            with open(args.output, "r", encoding="utf-8") as fh:
                existing = json.load(fh)
        except (OSError, ValueError):
            existing = None
    if isinstance(existing, dict) and existing.get("schema") == _CORE_SCHEMA:
        write_bench(merge_suite(existing, "batch", payload), args.output)
    else:
        write_bench(payload, args.output)

    head = payload["headline"]
    mem = payload["item_memory"]
    print(f"suite finished in {payload['total_wall_time_s']:.1f} s; "
          f"headline: per-unit {head['per_unit_s']:.2f} s vs batch "
          f"{head['batch_s']:.2f} s ({head['speedup']:.1f}x), "
          f"identical={head['identical']}; slots save "
          f"{mem['savings_bytes_per_item']:.0f} B/item; wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
