"""Design-choice ablations (DESIGN.md §6).

* **Best Fit load measure** — Section 2.2 lists L∞ / L1 / Lp as candidate
  multi-dimensional load notions; this bench compares their average-case
  cost on the Section 7 workload.
* **Clairvoyant value** — how much does knowing departure times buy over
  the best non-clairvoyant policy (paper §8 future work)?
* **Distribution sensitivity** — does the MF-leads ranking survive
  Poisson arrivals, heavy-tailed durations, and correlated dimensions?
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.clairvoyant import AlignmentBestFit, DurationClassifiedFirstFit
from repro.analysis.aggregate import summarize
from repro.analysis.report import format_table
from repro.analysis.sweep import sweep_cell
from repro.optimum.lower_bounds import height_lower_bound
from repro.simulation.runner import run
from repro.workloads.base import generate_batch
from repro.workloads.correlated import CorrelatedWorkload
from repro.workloads.distributions import DirichletSize, ParetoDuration
from repro.workloads.poisson import PoissonWorkload
from repro.workloads.uniform import UniformWorkload


def test_bestfit_load_measure_ablation(benchmark):
    """Compare Best Fit under L-inf / L1 / L2 load measures (d = 5)."""
    gen = UniformWorkload(d=5, n=400, mu=20, T=400, B=100)
    instances = generate_batch(gen, 8, seed=0)
    measures = ["best_fit", "best_fit_l1", "best_fit_l2"]

    cell = benchmark.pedantic(
        sweep_cell, args=(measures, instances), rounds=1, iterations=1
    )
    rows = [
        [name, cell.stats[name].mean, cell.stats[name].std] for name in measures
    ]
    print()
    print(format_table(["measure", "mean ratio", "std"], rows,
                       title="Best Fit load-measure ablation (d=5)"))
    # all variants must stay within a few percent of each other: the
    # measure choice is second-order (which is why the paper only pins
    # it down for the experiments)
    means = [cell.stats[m].mean for m in measures]
    assert max(means) / min(means) < 1.05


def test_clairvoyant_value(benchmark):
    """Duration knowledge vs the best non-clairvoyant policy under heavy
    load with heavy-tailed durations."""
    gen = PoissonWorkload(
        d=2, rate=25.0, horizon=60,
        durations=ParetoDuration(alpha=1.1, floor=1, cap=500),
        sizes=DirichletSize(min_mag=0.1, max_mag=0.9),
    )
    instances = [gen.sample_seeded(s) for s in range(4)]

    def measure():
        out = {}
        for name, algo in [
            ("move_to_front", "move_to_front"),
            ("first_fit", "first_fit"),
            ("alignment_best_fit", AlignmentBestFit()),
            ("duration_classified_ff", DurationClassifiedFirstFit(base=4.0)),
        ]:
            ratios = []
            for inst in instances:
                lb = height_lower_bound(inst)
                ratios.append(run(algo, inst).cost / lb)
            out[name] = summarize(ratios)
        return out

    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[k, v.mean, v.std] for k, v in stats.items()]
    print()
    print(format_table(["policy", "mean ratio", "std"], rows,
                       title="Clairvoyant-value ablation (heavy load, Pareto durations)"))
    # departure knowledge should help at this load level
    assert stats["alignment_best_fit"].mean <= stats["first_fit"].mean


@pytest.mark.parametrize(
    "workload",
    ["poisson", "pareto", "correlated"],
)
def test_distribution_sensitivity(benchmark, workload):
    """The MF-near-best conclusion should survive distribution changes."""
    if workload == "poisson":
        gen = PoissonWorkload(d=2, rate=2.0, horizon=200,
                              sizes=DirichletSize(min_mag=0.05, max_mag=0.8))
    elif workload == "pareto":
        gen = PoissonWorkload(d=2, rate=2.0, horizon=200,
                              durations=ParetoDuration(alpha=1.3, floor=1, cap=200),
                              sizes=DirichletSize(min_mag=0.05, max_mag=0.8))
    else:
        gen = CorrelatedWorkload(d=3, n=400, rho=0.8, mu=20, T=400,
                                 min_size=0.05, max_size=0.7)
    instances = [gen.sample_seeded(s) for s in range(5)]
    algos = ["move_to_front", "first_fit", "next_fit", "worst_fit"]

    cell = benchmark.pedantic(
        sweep_cell, args=(algos, instances), rounds=1, iterations=1
    )
    rows = [[a, cell.stats[a].mean, cell.stats[a].std] for a in algos]
    print()
    print(format_table(["policy", "mean ratio", "std"], rows,
                       title=f"Distribution sensitivity: {workload}"))
    best = cell.stats[cell.ranking()[0]].mean
    assert cell.stats["move_to_front"].mean <= 1.15 * best
