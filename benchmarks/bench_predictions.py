"""Prediction-robustness ablation (paper §8: ML-informed packing).

Sweeps the duration-prediction noise level σ and measures the cost of
prediction-driven policies against the non-clairvoyant baseline (Move To
Front) under heavy load — the consistency/robustness curve of the
learning-augmented setting:

* σ = 0 (perfect predictions) should beat MF;
* costs should degrade monotonically-ish as σ grows;
* even garbage predictions must stay within the Any Fit family's range
  (feasibility never depends on predictions).
"""

from __future__ import annotations

import pytest

from repro.algorithms.predictions import DurationPredictor, PredictedAlignmentFit
from repro.analysis.aggregate import summarize
from repro.analysis.report import format_table
from repro.optimum.lower_bounds import height_lower_bound
from repro.simulation.runner import run
from repro.workloads.distributions import DirichletSize, ParetoDuration
from repro.workloads.poisson import PoissonWorkload

SIGMAS = (0.0, 0.25, 0.5, 1.0, 2.0, 4.0)


def test_prediction_robustness_curve(benchmark):
    gen = PoissonWorkload(
        d=2, rate=25.0, horizon=60,
        durations=ParetoDuration(alpha=1.1, floor=1, cap=500),
        sizes=DirichletSize(min_mag=0.1, max_mag=0.9),
    )
    instances = [gen.sample_seeded(s) for s in range(4)]
    lbs = [height_lower_bound(inst) for inst in instances]

    def sweep():
        out = {}
        baseline = [
            run("move_to_front", inst).cost / lb
            for inst, lb in zip(instances, lbs)
        ]
        out["baseline"] = summarize(baseline)
        for sigma in SIGMAS:
            ratios = []
            for inst, lb in zip(instances, lbs):
                algo = PredictedAlignmentFit(DurationPredictor(sigma=sigma, seed=7))
                ratios.append(run(algo, inst).cost / lb)
            out[sigma] = summarize(ratios)
        return out

    stats = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [["move_to_front (no predictions)", stats["baseline"].mean]]
    for sigma in SIGMAS:
        rows.append([f"predicted_alignment_fit sigma={sigma:g}", stats[sigma].mean])
    print()
    print(format_table(
        ["policy", "mean ratio"], rows,
        title="Prediction-robustness curve (heavy load, Pareto durations)",
    ))

    # consistency: perfect predictions beat the non-clairvoyant baseline
    assert stats[0.0].mean < stats["baseline"].mean
    # robustness: even the noisiest predictor stays within 25% of baseline
    assert stats[SIGMAS[-1]].mean < 1.25 * stats["baseline"].mean
    # the curve trends upward from perfect to garbage predictions
    assert stats[0.0].mean <= stats[SIGMAS[-1]].mean + 1e-9
