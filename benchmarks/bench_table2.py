"""Table 2 bench: the experimental parameter table and its generator.

Table 2 is a configuration table; the bench measures the cost of
generating one full-scale instance under those parameters (the unit of
work behind every Figure 4 cell) and prints the rendered table.  Shape
assertions: the generated instances actually obey Table 2's ranges.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import FULL
from repro.experiments.table2 import render_table2
from repro.workloads.uniform import UniformWorkload


def test_table2_generator(benchmark):
    gen = UniformWorkload(d=2, n=FULL.n, mu=10, T=FULL.T, B=FULL.B)
    instance = benchmark(gen.sample_seeded, 0)
    assert instance.n == FULL.n
    assert np.allclose(instance.capacity, FULL.B)
    for it in instance.items:
        assert 1 <= it.duration <= 10
        assert np.all((1 <= it.size) & (it.size <= FULL.B))
        assert 0 <= it.arrival <= FULL.T - 10
    print()
    print(render_table2())
