#!/usr/bin/env python
"""Bounded-memory streaming benchmark, merged into BENCH_core.json.

Runs the pinned-seed streaming grid through the
:class:`~repro.streaming.StreamingEngine`: the headline cell is a
~10-million-event (~5-million-item) Poisson stream (d = 2, rate = 5000,
horizon = 1000) dispatched through ``next_fit`` — the O(1)-per-arrival
policy — consumed lazily from
:meth:`~repro.workloads.poisson.PoissonWorkload.stream` with
``record_assignment=False``, so nothing on the path is O(stream length).
A shorter ``first_fit`` cell covers the deep-open-list Any Fit scan
cost.  Each record carries events/sec throughput, the peak live-item and
open-bin counts (the O(live) memory bound made measurable — compare
``peak_live_items`` against ``items``), and the process peak RSS.

The payload nests under the ``"streaming"`` key of ``BENCH_core.json``
when that file already holds a core-suite payload, so one file carries
the whole perf trajectory.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_streaming.py            # full grid (minutes)
    PYTHONPATH=src python benchmarks/bench_streaming.py --smoke    # seconds-fast

Equivalent CLI form: ``python -m repro bench --suite streaming``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

# Allow running as a plain script from a checkout without installing.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.observability.bench import (  # noqa: E402
    STREAMING_SCENARIOS,
    STREAMING_SMOKE_SCENARIOS,
    merge_suite,
    run_streaming_suite,
    write_bench,
)
from repro.observability.bench import SCHEMA as _CORE_SCHEMA  # noqa: E402

_DEFAULT_OUTPUT = os.path.join(_REPO_ROOT, "BENCH_core.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the seconds-fast smoke grid instead of the full one")
    parser.add_argument("--repeats", type=int, default=1,
                        help="runs per scenario; wall-time is the min "
                             "(default 1 — the headline cell runs minutes)")
    parser.add_argument("--output", default=_DEFAULT_OUTPUT,
                        help="output JSON path (default: BENCH_core.json at the repo root)")
    args = parser.parse_args(argv)

    scenarios = STREAMING_SMOKE_SCENARIOS if args.smoke else STREAMING_SCENARIOS
    suite = "streaming-smoke" if args.smoke else "streaming"
    print(f"running {suite} suite ({len(scenarios)} scenarios, "
          f"repeats={args.repeats}) ...")
    payload = run_streaming_suite(
        scenarios=scenarios,
        repeats=args.repeats,
        suite=suite,
        progress=print,
    )

    # Nest under the core payload when the output file already holds one
    # (existing "fastpath"/"batch" records ride along untouched).
    existing = None
    if os.path.exists(args.output):
        try:
            with open(args.output, "r", encoding="utf-8") as fh:
                existing = json.load(fh)
        except (OSError, ValueError):
            existing = None
    if isinstance(existing, dict) and existing.get("schema") == _CORE_SCHEMA:
        write_bench(merge_suite(existing, "streaming", payload), args.output)
    else:
        write_bench(payload, args.output)

    head = payload["headline"]
    print(f"suite finished in {payload['total_wall_time_s']:.1f} s; "
          f"headline ({head['scenario']}): {head['events']} events at "
          f"{head['events_per_sec']:.0f}/s, peak live "
          f"{head['peak_live_items']} of {head['items']} items, "
          f"rss {head['peak_rss_mb']:.0f} MiB; wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
