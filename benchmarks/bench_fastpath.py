#!/usr/bin/env python
"""Fastpath benchmark: classic Engine vs FastEngine, merged into BENCH_core.json.

Runs the pinned-seed fastpath scenario grid (the three largest core
cells plus one extra-large sweep cell) through every fast-kernel policy,
timing the classic :class:`~repro.simulation.engine.Engine` against
:class:`~repro.simulation.fastpath.FastEngine` on each available backend
(numpy and pure-python).  Each cell also re-asserts the bit-identity
contract: the ``identical`` flag records whether fast and classic
packings agreed on every item→bin assignment and the Eq. 1 cost.

The payload nests under the ``"fastpath"`` key of ``BENCH_core.json``
when that file already holds a core-suite payload, so one file carries
the whole perf trajectory.  The headline (largest scenario) is the
number quoted in the README: the numpy backend must stay >= 3x classic
and the pure-python fallback must not be slower than classic.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_fastpath.py            # full grid
    PYTHONPATH=src python benchmarks/bench_fastpath.py --smoke    # seconds-fast
    PYTHONPATH=src python benchmarks/bench_fastpath.py --backend python

Equivalent CLI form: ``python -m repro bench --suite fastpath``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

# Allow running as a plain script from a checkout without installing.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.observability.bench import (  # noqa: E402
    FASTPATH_SCENARIOS,
    FASTPATH_SMOKE_SCENARIOS,
    merge_fastpath,
    run_fastpath_suite,
    write_bench,
)
from repro.observability.bench import SCHEMA as _CORE_SCHEMA  # noqa: E402

_DEFAULT_OUTPUT = os.path.join(_REPO_ROOT, "BENCH_core.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the seconds-fast smoke grid instead of the full one")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per (scenario, algorithm, engine); wall-time is the min")
    parser.add_argument("--backend", action="append", default=None,
                        choices=["numpy", "python"],
                        help="restrict to one backend (repeatable; default: all available)")
    parser.add_argument("--output", default=_DEFAULT_OUTPUT,
                        help="output JSON path (default: BENCH_core.json at the repo root)")
    args = parser.parse_args(argv)

    scenarios = FASTPATH_SMOKE_SCENARIOS if args.smoke else FASTPATH_SCENARIOS
    suite = "fastpath-smoke" if args.smoke else "fastpath"
    print(f"running {suite} suite ({len(scenarios)} scenarios, "
          f"repeats={args.repeats}) ...")
    payload = run_fastpath_suite(
        scenarios=scenarios,
        repeats=args.repeats,
        backends=args.backend,
        suite=suite,
        progress=print,
    )

    # Nest under the core payload when the output file already holds one.
    existing = None
    if os.path.exists(args.output):
        try:
            with open(args.output, "r", encoding="utf-8") as fh:
                existing = json.load(fh)
        except (OSError, ValueError):
            existing = None
    if isinstance(existing, dict) and existing.get("schema") == _CORE_SCHEMA:
        write_bench(merge_fastpath(existing, payload), args.output)
    else:
        write_bench(payload, args.output)

    head = payload["headline"]
    ups = ", ".join(
        f"{k.split('_', 1)[1]} {head[k]:.1f}x"
        for k in sorted(head) if k.startswith("speedup_")
    )
    print(f"suite finished in {payload['total_wall_time_s']:.1f} s; "
          f"headline ({head['scenario']}): {ups}, "
          f"identical={head['identical']}; wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
