#!/usr/bin/env python
"""Fastpath benchmark: classic Engine vs FastEngine, merged into BENCH_core.json.

Runs the pinned-seed fastpath scenario grid (the three largest core
cells plus one extra-large sweep cell) through every fast-kernel policy,
timing the classic :class:`~repro.simulation.engine.Engine` against
:class:`~repro.simulation.fastpath.FastEngine` on each available backend
(numpy, pure-python, and — when importable — the numba JIT tier).  Each
cell also re-asserts the bit-identity contract: the ``identical`` flag
records whether fast and classic packings agreed on every item→bin
assignment and the Eq. 1 cost.

``--suite numba`` runs the JIT comparison instead (numpy vs numba per
policy, plus the batched trial fan-out), nesting its payload under
``fastpath.numba``; when numba is missing it writes an honest
``{"available": false}`` stub rather than fabricated timings.

The payload nests under the ``"fastpath"`` key of ``BENCH_core.json``
when that file already holds a core-suite payload — carrying over any
nested ``vectorized``/``numba`` records rather than clobbering them —
so one file carries the whole perf trajectory.  The headline (largest
scenario) is the number quoted in the README: the numpy backend must
stay >= 3x classic and the pure-python fallback must not be slower than
classic.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_fastpath.py            # full grid
    PYTHONPATH=src python benchmarks/bench_fastpath.py --smoke    # seconds-fast
    PYTHONPATH=src python benchmarks/bench_fastpath.py --backend python
    PYTHONPATH=src python benchmarks/bench_fastpath.py --suite numba

Equivalent CLI forms: ``python -m repro bench --suite fastpath`` and
``python -m repro bench --suite fastpath-numba``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

# Allow running as a plain script from a checkout without installing.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.observability.bench import (  # noqa: E402
    FASTPATH_SCENARIOS,
    FASTPATH_SMOKE_SCENARIOS,
    NUMBA_SMOKE_TRIALS,
    NUMBA_TRIALS,
    merge_fastpath,
    merge_numba,
    run_fastpath_suite,
    run_numba_suite,
    write_bench,
)
from repro.observability.bench import SCHEMA as _CORE_SCHEMA  # noqa: E402

_DEFAULT_OUTPUT = os.path.join(_REPO_ROOT, "BENCH_core.json")


def _load_existing(path: str):
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", default="fastpath",
                        choices=["fastpath", "numba"],
                        help="fastpath = classic-vs-FastEngine grid; numba = "
                             "the JIT comparison (nested under fastpath.numba)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the seconds-fast smoke grid instead of the full one")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per (scenario, algorithm, engine); wall-time is the min")
    parser.add_argument("--backend", action="append", default=None,
                        choices=["numpy", "python", "vectorized", "numba"],
                        help="restrict to one backend (repeatable; default: all "
                             "available; fastpath suite only)")
    parser.add_argument("--output", default=_DEFAULT_OUTPUT,
                        help="output JSON path (default: BENCH_core.json at the repo root)")
    args = parser.parse_args(argv)

    scenarios = FASTPATH_SMOKE_SCENARIOS if args.smoke else FASTPATH_SCENARIOS

    if args.suite == "numba":
        suite = "fastpath-numba-smoke" if args.smoke else "fastpath-numba"
        n_trials = NUMBA_SMOKE_TRIALS if args.smoke else NUMBA_TRIALS
        print(f"running {suite} suite ({len(scenarios)} scenarios, "
              f"{n_trials} trials, repeats={args.repeats}) ...")
        payload = run_numba_suite(
            scenarios=scenarios, n_trials=n_trials,
            repeats=args.repeats, suite=suite, progress=print,
        )
        existing = _load_existing(args.output)
        if isinstance(existing, dict) and existing.get("schema") == _CORE_SCHEMA:
            write_bench(merge_numba(existing, payload), args.output)
        else:
            write_bench(payload, args.output)
        if not payload.get("available"):
            print(f"numba unavailable ({payload['reason']}); wrote honest "
                  f"stub; wrote {args.output}")
            return 0
        head = payload["headline"]
        print(f"suite finished in {payload['total_wall_time_s']:.1f} s; "
              f"headline ({head['scenario']}): jit compile "
              f"{head['jit_compile_s']:.2f} s (excluded), "
              f"{head['speedup_numba']:.1f}x classic, "
              f"{head['speedup_vs_numpy']:.1f}x numpy, "
              f"{head['events_per_sec_numba']:.0f} events/s, "
              f"identical={head['identical']}; wrote {args.output}")
        return 0

    suite = "fastpath-smoke" if args.smoke else "fastpath"
    print(f"running {suite} suite ({len(scenarios)} scenarios, "
          f"repeats={args.repeats}) ...")
    payload = run_fastpath_suite(
        scenarios=scenarios,
        repeats=args.repeats,
        backends=args.backend,
        suite=suite,
        progress=print,
    )

    # Nest under the core payload when the output file already holds one,
    # carrying over nested vectorized/numba records from the prior
    # fastpath block so a grid re-run never clobbers them.
    existing = _load_existing(args.output)
    if isinstance(existing, dict):
        prior = existing.get("fastpath", {})
        if isinstance(prior, dict):
            for key in ("vectorized", "numba"):
                if key in prior:
                    payload[key] = prior[key]
    if isinstance(existing, dict) and existing.get("schema") == _CORE_SCHEMA:
        write_bench(merge_fastpath(existing, payload), args.output)
    else:
        write_bench(payload, args.output)

    head = payload["headline"]
    ups = ", ".join(
        f"{k.split('_', 1)[1]} {head[k]:.1f}x"
        for k in sorted(head) if k.startswith("speedup_")
    )
    print(f"suite finished in {payload['total_wall_time_s']:.1f} s; "
          f"headline ({head['scenario']}): {ups}, "
          f"identical={head['identical']}; wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
