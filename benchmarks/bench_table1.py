"""Table 1 regeneration bench: competitive-ratio bound verification.

Runs the adversarial families (Theorems 5, 6, 8 + the Best Fit trap)
across growing ``k`` and prints both the paper's bound formulas and the
measured ratios.  Shape assertions: measured ratios are sandwiched
between ~0 and the theoretical targets, grow with ``k``, and for MF/FF/
NF never exceed the Table 1 upper bounds.
"""

from __future__ import annotations

import math

from repro.experiments.table1 import (
    render_table1,
    render_table1_bounds,
    run_table1,
)


def _check_rows(rows) -> None:
    for r in rows:
        assert r.measured_ratio <= r.target_ratio + 1e-6, (
            f"{r.family}/{r.algorithm} k={r.k}: measured {r.measured_ratio} "
            f"exceeds target {r.target_ratio}"
        )
        if not math.isinf(r.theory_upper):
            assert r.measured_ratio <= r.theory_upper + 1e-6
    # within each (family, algorithm, d), the certified fraction of the
    # target grows with k
    keyed = {}
    for r in rows:
        keyed.setdefault((r.family, r.algorithm, r.d), []).append(r)
    for group in keyed.values():
        group.sort(key=lambda r: r.k)
        fracs = [r.fraction_of_target for r in group]
        assert fracs == sorted(fracs), f"non-monotone ratios in {group[0].family}"


def test_table1_verification(benchmark, paper_scale):
    ks = (2, 4, 8, 16, 32, 64) if paper_scale else (2, 4, 8, 16)
    rows = benchmark.pedantic(
        run_table1,
        kwargs={"ks": ks, "d_values": (1, 2, 3), "mu": 5.0},
        rounds=1,
        iterations=1,
    )
    _check_rows(rows)
    print()
    print(render_table1_bounds(mu=5.0, d_values=(1, 2, 3)))
    print()
    print(render_table1(rows))
