"""Figures 1-3 regeneration benches: the analysis diagrams.

Each bench runs the instrumented simulation behind one diagram, prints
the ASCII rendering, and asserts the structural fact the figure
illustrates (Figure 1: leading intervals tile the span; Figure 2: the
``Q_i`` suffixes tile the span; Figure 3: ``dk`` bins survive into
``[1, μ+1)`` holding one small item each).
"""

from __future__ import annotations

import pytest

from repro.algorithms.first_fit import FirstFit
from repro.algorithms.move_to_front import MoveToFront
from repro.experiments.figures123 import run_figure1, run_figure2, run_figure3
from repro.simulation.engine import Engine
from repro.simulation.instrumentation import LeaderTracker, UsagePeriodTracker
from repro.workloads.uniform import UniformWorkload


@pytest.fixture(scope="module")
def diagram_instance():
    # a contiguous-activity instance so span == horizon and the Claim 1 /
    # Claim 4 checks are exact
    return UniformWorkload(d=2, n=200, mu=8, T=60, B=10).sample_seeded(5)


def test_figure1_mf_decomposition(benchmark, diagram_instance):
    def run_instrumented():
        tracker = LeaderTracker()
        Engine(diagram_instance, MoveToFront(), observers=[tracker]).run()
        return tracker

    tracker = benchmark(run_instrumented)
    total_leading = sum(
        iv.length for ivs in tracker.leading_intervals().values() for iv in ivs
    )
    assert total_leading == pytest.approx(diagram_instance.span, rel=1e-9)
    print()
    print(run_figure1())


def test_figure2_ff_decomposition(benchmark, diagram_instance):
    def run_instrumented():
        tracker = UsagePeriodTracker()
        Engine(diagram_instance, FirstFit(), observers=[tracker]).run()
        return tracker

    tracker = benchmark(run_instrumented)
    if len(diagram_instance.active_components()) == 1:
        q_total = sum(q.length for _, q in tracker.decomposition())
        assert q_total == pytest.approx(diagram_instance.span, rel=1e-9)
    print()
    print(run_figure2())


@pytest.mark.parametrize("algorithm", ["first_fit", "move_to_front", "best_fit"])
def test_figure3_theorem5_phases(benchmark, algorithm):
    out = benchmark.pedantic(
        run_figure3,
        kwargs={"d": 2, "k": 3, "mu": 4.0, "algorithm": algorithm},
        rounds=1,
        iterations=1,
    )
    # phase (c): all dk = 6 bins still open
    assert "6 open bins" in out
    print()
    print(out)
