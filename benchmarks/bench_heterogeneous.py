"""Heterogeneous-fleet ablation: opening rules and the value of a menu.

Compares the typed Any Fit opening rules (cheapest-rate vs best-value)
against each single-type fleet at several load levels, measuring the
rate-weighted bill.  Shape assertions: under heavy load the economies-
of-scale rule wins; under light load small boxes win; the menu is never
much worse than the best single type.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.heterogeneous import DEFAULT_FLEET, Fleet, ServerType, TypedAnyFit, typed_run
from repro.workloads.distributions import DirichletSize
from repro.workloads.poisson import PoissonWorkload

RATES = (0.5, 3.0, 12.0)


def _policies():
    out = {
        "menu/cheapest": TypedAnyFit(DEFAULT_FLEET, opening_rule="cheapest"),
        "menu/best_value": TypedAnyFit(DEFAULT_FLEET, opening_rule="best_value"),
    }
    for t in DEFAULT_FLEET:
        out[f"only-{t.name}"] = TypedAnyFit(Fleet([t]), opening_rule="cheapest")
    return out


def test_fleet_economics(benchmark):
    def measure():
        bills = {}
        for rate in RATES:
            gen = PoissonWorkload(d=2, rate=rate, horizon=40,
                                  sizes=DirichletSize(min_mag=0.05, max_mag=0.8))
            instances = [gen.sample_seeded(s) for s in range(4)]
            for name, algo_builder in _policies().items():
                total = 0.0
                for inst in instances:
                    # fresh policy per run (policies are stateful)
                    algo = TypedAnyFit(
                        algo_builder.fleet, opening_rule=algo_builder.opening_rule
                    )
                    total += typed_run(algo, inst).cost
                bills[(rate, name)] = total
        return bills

    bills = benchmark.pedantic(measure, rounds=1, iterations=1)

    names = sorted({name for (_, name) in bills})
    rows = [[name] + [bills[(rate, name)] for rate in RATES] for name in names]
    print()
    print(format_table(
        ["policy"] + [f"rate={r:g}" for r in RATES], rows,
        title="Heterogeneous fleet: total bill by opening rule and load",
    ))

    for rate in RATES:
        menu_best = min(bills[(rate, "menu/cheapest")], bills[(rate, "menu/best_value")])
        single_best = min(bills[(rate, f"only-{t.name}")] for t in DEFAULT_FLEET)
        assert menu_best <= single_best * 1.25, (
            f"menu should be competitive with the best single type at rate={rate}"
        )
    # heavy load rewards economies of scale
    assert (
        bills[(RATES[-1], "menu/best_value")] <= bills[(RATES[-1], "menu/cheapest")]
    )
