"""Shared fixtures and reporting helpers for the benchmark harness.

Every bench regenerates one paper artefact (table/figure) or one ablation
from DESIGN.md §6.  Benches print the rows/series they produce (visible
with ``pytest benchmarks/ --benchmark-only -s``), and assert the shape
claims so a regression in packing behaviour fails the bench run, not
just the plots.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run benches at the paper's full Table 2 scale (slow: hours)",
    )


@pytest.fixture(scope="session")
def paper_scale(request):
    """Whether to run at the paper's full scale (default: quick scale)."""
    return request.config.getoption("--paper-scale")
