#!/usr/bin/env python
"""Perf-baseline harness: run the pinned-seed suite, write BENCH_core.json.

This is the repo's performance trajectory recorder.  It runs the
standard scenario grid (uniform workloads, ``d ∈ {1, 2, 4}`` × small /
medium / large ``n``) through all seven Any Fit variants and writes
``BENCH_core.json`` at the repo root — per-scenario wall-times, event
throughput, hot-path counters (fit checks, candidate scans), and cost
ratios.  Subsequent perf PRs re-run it and compare: counters must not
regress silently, and wall-times bound the before/after claim.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/harness.py                # core suite
    PYTHONPATH=src python benchmarks/harness.py --suite smoke  # seconds-fast
    PYTHONPATH=src python benchmarks/harness.py --overhead     # also run the
                                                               # <= 2% check
    PYTHONPATH=src python benchmarks/harness.py --trace runs.jsonl

Equivalent CLI form: ``python -m repro bench``.  See
docs/observability.md for how to read the output file.

The classic-vs-FastEngine comparison lives in the companion script
``benchmarks/bench_fastpath.py`` (CLI form:
``python -m repro bench --suite fastpath``) and the per-unit-vs-batched
sweep comparison in ``benchmarks/bench_batch.py`` (CLI form:
``python -m repro bench --suite batch``); their payloads nest under the
``"fastpath"`` and ``"batch"`` keys of the same ``BENCH_core.json``,
and a core re-run here preserves both keys.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

# Allow running as a plain script from a checkout without installing.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.observability.bench import (  # noqa: E402
    CORE_SCENARIOS,
    SMOKE_SCENARIOS,
    measure_overhead,
    merge_suite,
    run_suite,
    write_bench,
)
from repro.observability.sinks import JsonLinesSink, NullSink  # noqa: E402

_SUITES = {"core": CORE_SCENARIOS, "smoke": SMOKE_SCENARIOS}
_DEFAULT_OUTPUT = os.path.join(_REPO_ROOT, "BENCH_core.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", choices=sorted(_SUITES), default="core")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per (scenario, algorithm); wall-time is the min")
    parser.add_argument("--output", default=_DEFAULT_OUTPUT,
                        help="output JSON path (default: BENCH_core.json at the repo root)")
    parser.add_argument("--trace", default=None,
                        help="also emit per-run records to this JSON-lines file")
    parser.add_argument("--overhead", action="store_true",
                        help="measure instrumented-vs-plain engine overhead "
                             "on the medium scenario and report it")
    args = parser.parse_args(argv)

    sink = JsonLinesSink(args.trace) if args.trace else NullSink()
    try:
        print(f"running {args.suite} suite ({len(_SUITES[args.suite])} scenarios, "
              f"repeats={args.repeats}) ...")
        payload = run_suite(
            scenarios=_SUITES[args.suite],
            repeats=args.repeats,
            suite=args.suite,
            sink=sink,
            progress=print,
        )
    finally:
        sink.close()

    if args.overhead:
        report = measure_overhead()
        payload["overhead"] = report
        print(f"instrumentation overhead on {report['scenario']} "
              f"({report['algorithm']}): {report['overhead_frac'] * 100:+.2f}% "
              f"(plain {report['plain_s'] * 1e3:.2f} ms, "
              f"instrumented {report['instrumented_s'] * 1e3:.2f} ms)")

    if os.path.exists(args.output):
        # A core re-run must not discard existing companion records.
        try:
            with open(args.output, "r", encoding="utf-8") as fh:
                existing = json.load(fh)
        except (OSError, ValueError):
            existing = None
        if isinstance(existing, dict):
            from repro.observability.bench import COMPANION_SUITES
            for key in COMPANION_SUITES:
                if key in existing:
                    payload = merge_suite(payload, key, existing[key])

    write_bench(payload, args.output)
    print(f"suite finished in {payload['total_wall_time_s']:.1f} s; "
          f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
