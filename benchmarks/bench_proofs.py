"""Proof-decomposition verification bench.

Runs the Theorem 2 (Move To Front) and Theorem 4 (Next Fit) proof
checkers over a batch of paper-scale instances and asserts every
intermediate inequality of the proofs holds on every execution — the
strongest per-run certification the library offers.
"""

from __future__ import annotations

import pytest

from repro.analysis.proofs import verify_theorem2, verify_theorem4
from repro.workloads.base import generate_batch
from repro.workloads.uniform import UniformWorkload


@pytest.mark.parametrize("d", [1, 2, 5])
def test_theorem2_verification(benchmark, d):
    instances = generate_batch(
        UniformWorkload(d=d, n=500, mu=20, T=500, B=100), 5, seed=d
    )

    def verify_all():
        return [verify_theorem2(inst) for inst in instances]

    reports = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    for report in reports:
        assert report.all_hold, report.failed()
        assert report.displacement_count > 0  # non-trivial executions
    print()
    r = reports[0]
    print(f"d={d}: {len(reports)} runs, all {len(r.checks)} Theorem 2 "
          f"inequalities hold; e.g. cost={r.cost:.0f} <= span+claims="
          f"{[c.rhs for c in r.checks if c.name.startswith('assembly')][0]:.0f}")


@pytest.mark.parametrize("d", [1, 2, 5])
def test_theorem4_verification(benchmark, d):
    instances = generate_batch(
        UniformWorkload(d=d, n=500, mu=20, T=500, B=100), 5, seed=10 + d
    )

    def verify_all():
        return [verify_theorem4(inst) for inst in instances]

    reports = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    for report in reports:
        assert report.all_hold, report.failed()
        assert report.release_count > 0
    print()
    r = reports[0]
    print(f"d={d}: {len(reports)} runs, all {len(r.checks)} Theorem 4 "
          f"inequalities hold ({r.release_count} releases in run 0)")
