#!/usr/bin/env python
"""Cloud gaming dispatch: the paper's motivating application.

A cloud-gaming provider (GaiKai / OnLive / StreamMyGame in the paper's
introduction) rents servers and dispatches game sessions as they start.
Each session needs GPU and bandwidth; sessions end whenever the player
stops - the *non-clairvoyant* setting.  The bill is pay-as-you-go: total
server-hours.  Which dispatch rule should the provider use?

This example builds a synthetic evening of game sessions (three game
profiles with different GPU/bandwidth shapes, a demand ramp toward prime
time, lognormal play times), runs all seven Any Fit policies, and prints
the rental bill each one produces.

Run:  python examples/cloud_gaming.py
"""

import numpy as np

from repro import Instance, Item, PAPER_ALGORITHMS, compare_algorithms
from repro.analysis.report import format_table
from repro.optimum import height_lower_bound

#: (name, gpu, bandwidth, popularity) - fractions of one server
GAME_PROFILES = [
    ("indie", 0.10, 0.05, 0.5),
    ("AAA", 0.35, 0.20, 0.35),
    ("esports-stream", 0.20, 0.40, 0.15),
]

def evening_of_sessions(rng: np.random.Generator, hours: float = 6.0) -> Instance:
    """Session starts ramp up toward prime time; play times are lognormal
    (median ~35 min) truncated to [5 min, 4 h]."""
    base_rate = 40.0  # sessions per hour at the start of the evening
    t, items, uid = 0.0, [], 0
    names, gpus, bws, pops = zip(*GAME_PROFILES)
    p = np.array(pops) / sum(pops)
    while t < hours:
        # demand doubles by prime time
        rate = base_rate * (1.0 + t / hours)
        t += rng.exponential(1.0 / rate)
        if t >= hours:
            break
        g = rng.choice(len(GAME_PROFILES), p=p)
        playtime = float(np.clip(rng.lognormal(np.log(0.6), 0.8), 1 / 12, 4.0))
        items.append(Item(t, t + playtime, np.array([gpus[g], bws[g]]), uid))
        uid += 1
    return Instance(items, name="evening-of-game-sessions")

def main() -> None:
    rng = np.random.default_rng(2023)
    instance = evening_of_sessions(rng)
    lb = height_lower_bound(instance)
    print(f"{instance.n} game sessions over {instance.horizon.length:.1f} h "
          f"(mu = {instance.mu:.0f}); minimum conceivable bill: {lb:.1f} server-hours\n")

    packings = compare_algorithms(PAPER_ALGORITHMS, instance)
    hourly_rate = 1.50  # $ per server-hour, on-demand GPU instance
    rows = []
    for name, packing in packings.items():
        rows.append([
            name,
            packing.cost,
            packing.cost / lb,
            packing.num_bins,
            f"${packing.cost * hourly_rate:,.2f}",
        ])
    rows.sort(key=lambda r: r[1])
    print(format_table(
        ["policy", "server-hours", "ratio vs LB", "servers rented", "bill"],
        rows,
        title="One evening of cloud gaming, by dispatch policy",
    ))

    best, worst = rows[0], rows[-1]
    saving = (worst[1] - best[1]) * hourly_rate
    print(f"\n{best[0]} vs {worst[0]}: ${saving:,.2f} saved in one evening "
          f"({(worst[1] - best[1]) / worst[1]:.0%} of the worst bill).")
    print("The paper's recommendation - Move To Front - combines a bounded "
          "worst case\n((2mu+1)d + 1, Theorem 2) with near-best average "
          "performance (Section 7).")

if __name__ == "__main__":
    main()
