#!/usr/bin/env python
"""Right-sizing a heterogeneous fleet (instance-type menus).

Clouds sell a menu of server shapes with economies of scale: the big box
is cheaper per core but wasted when idle.  This study extends the
paper's identical-bins model to typed servers (the
``repro.heterogeneous`` extension) and asks the operator question: which
*opening rule* should dispatch use, and when does the big box pay off?

Sweeps the arrival rate and compares:

* ``menu/cheapest``   — open the cheapest type that fits the job;
* ``menu/best_value`` — open the type with the best cost density;
* each single-type fleet (no menu) as the baseline.

Run:  python examples/heterogeneous_fleet.py
"""

from repro.analysis.report import format_table
from repro.heterogeneous import DEFAULT_FLEET, Fleet, ServerType, TypedAnyFit, typed_run
from repro.workloads import DirichletSize, LognormalDuration, PoissonWorkload

RATES = (0.5, 2.0, 6.0, 15.0)

def workload(rate: float) -> PoissonWorkload:
    return PoissonWorkload(
        d=2,
        rate=rate,
        horizon=48.0,
        durations=LognormalDuration(log_mean=0.5, log_sigma=1.0, floor=0.25, cap=24),
        sizes=DirichletSize(min_mag=0.05, max_mag=0.8),
    )

def bill(fleet: Fleet, opening_rule: str, rate: float, seeds=range(3)) -> float:
    total = 0.0
    for seed in seeds:
        inst = workload(rate).sample_seeded(seed)
        algo = TypedAnyFit(fleet, opening_rule=opening_rule)
        total += typed_run(algo, inst).cost
    return total / len(list(seeds))

def main() -> None:
    policies = [
        ("menu / cheapest type", DEFAULT_FLEET, "cheapest"),
        ("menu / best value type", DEFAULT_FLEET, "best_value"),
    ]
    for t in DEFAULT_FLEET:
        policies.append((f"only {t.name} (rate {t.cost_rate:g})",
                         Fleet([t]), "cheapest"))

    rows = []
    for label, fleet, rule in policies:
        rows.append([label] + [bill(fleet, rule, r) for r in RATES])
    print(format_table(
        ["opening policy"] + [f"rate={r:g}/h" for r in RATES],
        rows,
        title="Mean bill over 48h vs arrival rate (2-D demands, lognormal lifetimes)",
    ))

    print("\nReading the crossover:")
    for j, rate in enumerate(RATES):
        best = min(rows, key=lambda r: r[j + 1])
        print(f"  rate={rate:>4g}/h: cheapest policy is {best[0]} "
              f"({best[j + 1]:.0f} cost units)")
    print(
        "\nLight traffic favours small boxes (pay only for what you use);\n"
        "heavy traffic favours economies of scale (the xlarge's lower cost\n"
        "density wins once it stays busy).  Neither opening rule dominates\n"
        "across regimes - right-sizing needs a load estimate, the same kind\n"
        "of prediction the paper's Section 8 points to as future work."
    )

if __name__ == "__main__":
    main()
