#!/usr/bin/env python
"""VM placement on physical servers: the provider-side application.

A cloud provider places incoming VM requests (CPU + memory demands) onto
physical servers; every active server burns power, so the objective is
MinUsageTime (the paper cites ~$100M/year per 1% packing-efficiency gain
at Azure scale).  The real Azure traces are proprietary, so this example
uses the library's synthetic Azure-like trace generator: a skewed VM-type
catalogue, diurnal demand, lognormal lifetimes, batched deployments
(see DESIGN.md, substitution note).

It then answers two operator questions:
1. which dispatch policy minimises server-on time?
2. how big is the gap to the offline optimum bracket?

Run:  python examples/vm_placement.py
"""

import numpy as np

from repro import CloudTraceWorkload, PAPER_ALGORITHMS, compare_algorithms
from repro.analysis.report import format_table
from repro.optimum import height_lower_bound, optimum_cost_bounds
from repro.simulation.metrics import compute_metrics

def main() -> None:
    rng = np.random.default_rng(7)
    trace = CloudTraceWorkload(days=3, base_rate=6.0).sample(rng)
    print(f"synthetic trace: {trace.n} VM requests over "
          f"{trace.horizon.length / 24:.0f} days "
          f"(lifetimes {trace.min_duration:.2f}-{trace.max_duration:.1f} h)\n")

    packings = compare_algorithms(PAPER_ALGORITHMS, trace)
    lb = height_lower_bound(trace)
    rows = []
    for name, packing in packings.items():
        m = compute_metrics(packing)
        rows.append([
            name,
            m.cost,
            m.cost / lb,
            m.num_bins,
            m.max_concurrent,
            f"{m.average_utilization:.1%}",
        ])
    rows.sort(key=lambda r: r[1])
    print(format_table(
        ["policy", "server-hours", "ratio vs LB", "servers used",
         "peak servers", "utilisation"],
        rows,
        title="Three days of VM placement, by dispatch policy",
    ))

    # the certified optimum bracket: what an offline scheduler with
    # repacking could achieve
    opt_lo, opt_hi = optimum_cost_bounds(trace)
    best = rows[0]
    print(f"\noffline optimum (certified bracket): "
          f"[{opt_lo:.1f}, {opt_hi:.1f}] server-hours")
    print(f"best online policy ({best[0]}): {best[1]:.1f} server-hours -> "
          f"at most {best[1] / opt_lo:.2f}x the offline optimum")

    gain = (rows[-1][1] - rows[0][1]) / rows[-1][1]
    print(f"\npolicy choice alone is worth {gain:.1%} of the energy bill "
          f"on this trace - the kind of gap the paper's introduction "
          f"quantifies at ~$100M/year per 1% for a hyperscaler.")

if __name__ == "__main__":
    main()
