#!/usr/bin/env python
"""Adversarial analysis: watching the lower-bound proofs execute.

The paper's lower bounds (Theorems 5, 6, 8) are constructive: specific
item sequences force specific executions.  This example builds each
family at growing parameter ``k``, runs the targeted algorithms, and
shows the measured cost ratio marching toward the theoretical bound -
the proofs, as running code.

Run:  python examples/adversarial_analysis.py
"""

from repro import make_algorithm, run
from repro import theorem5_instance, theorem6_instance, theorem8_instance
from repro.analysis.report import format_table
from repro.analysis.theory import upper_bound
from repro.workloads.adversarial import best_fit_trap

MU = 5.0

def sweep(family_name, make_adv, algorithm, ks):
    rows = []
    for k in ks:
        adv = make_adv(k)
        packing = run(make_algorithm(algorithm), adv.instance)
        ratio = packing.cost / adv.opt_upper
        rows.append([k, adv.instance.n, packing.num_bins, packing.cost,
                     ratio, adv.target_ratio, f"{ratio / adv.target_ratio:.0%}"])
    print(format_table(
        ["k", "items", "bins", "cost", "measured CR >=", "theory target",
         "% of target"],
        rows,
        title=f"{family_name} vs {algorithm}",
    ))
    print()

def main() -> None:
    d = 2
    print(f"All families at mu = {MU:g}; Theorem 5/6 families at d = {d}.\n")

    sweep(
        "Theorem 5 family - any Any Fit algorithm pays >= (mu+1)d = "
        f"{(MU + 1) * d:g}",
        lambda k: theorem5_instance(d=d, k=k, mu=MU),
        "move_to_front",
        ks=(2, 4, 8, 16, 32),
    )
    sweep(
        f"Theorem 6 family - Next Fit pays >= 2*mu*d = {2 * MU * d:g}",
        lambda k: theorem6_instance(d=d, k=k, mu=MU),
        "next_fit",
        ks=(2, 4, 8, 16, 32),
    )
    sweep(
        f"Theorem 8 family (d=1) - Move To Front pays >= 2*mu = {2 * MU:g}",
        lambda k: theorem8_instance(n=k, mu=MU),
        "move_to_front",
        ks=(2, 4, 8, 16, 32),
    )
    sweep(
        "Best Fit lure family - ratio grows ~linearly in k "
        "(Thm 7: CR unbounded)",
        lambda k: best_fit_trap(k=k),
        "best_fit",
        ks=(2, 4, 8, 12),
    )

    # the matching upper bounds, for contrast
    print("Upper bounds at these parameters (Table 1):")
    for algo in ("move_to_front", "first_fit", "next_fit"):
        print(f"  {algo:15s} <= {upper_bound(algo, MU, d):g}   (d={d})")
    print("  best_fit        unbounded")
    print("\nNote how each family's measured ratio approaches its target "
          "from below as k grows,\nwhile never crossing the corresponding "
          "upper bound - the almost-tightness the paper proves.")

if __name__ == "__main__":
    main()
