#!/usr/bin/env python
"""How much is knowing job durations worth?  (Paper §8 future work.)

The paper studies the non-clairvoyant setting; its concluding remarks
name the clairvoyant problem (duration known on arrival, e.g. predicted
by an ML model) as future work.  This study quantifies the value of that
information across load levels: it sweeps the arrival rate of a heavy-
tailed Poisson workload and compares

* the best non-clairvoyant policies (Move To Front, First Fit), against
* two clairvoyant policies from this library: departure-alignment Best
  Fit, and duration-classified First Fit.

The headline: duration knowledge is worth little at light load (few
servers run anyway; classification overhead can even hurt) and several
percent of the bill at heavy load - with a visible crossover.

Run:  python examples/clairvoyant_study.py
"""

from repro import DurationClassifiedFirstFit, AlignmentBestFit, run
from repro.analysis.aggregate import summarize
from repro.analysis.report import format_table
from repro.optimum import height_lower_bound
from repro.workloads.distributions import DirichletSize, ParetoDuration
from repro.workloads.poisson import PoissonWorkload

POLICIES = [
    ("move_to_front (non-clair.)", lambda: "move_to_front"),
    ("first_fit (non-clair.)", lambda: "first_fit"),
    ("alignment_best_fit (clair.)", AlignmentBestFit),
    ("duration_classified_ff (clair.)", lambda: DurationClassifiedFirstFit(base=4.0)),
]

def cell(rate: float, seeds=range(4)):
    gen = PoissonWorkload(
        d=2,
        rate=rate,
        horizon=60,
        durations=ParetoDuration(alpha=1.1, floor=1, cap=500),
        sizes=DirichletSize(min_mag=0.1, max_mag=0.9),
    )
    instances = [gen.sample_seeded(s) for s in seeds]
    out = {}
    for label, make in POLICIES:
        ratios = []
        for inst in instances:
            algo = make()
            ratios.append(run(algo, inst).cost / height_lower_bound(inst))
        out[label] = summarize(ratios)
    return out

def main() -> None:
    rates = (2.0, 8.0, 25.0)
    results = {rate: cell(rate) for rate in rates}

    rows = []
    for label, _ in POLICIES:
        rows.append([label] + [results[r][label].mean for r in rates])
    print(format_table(
        ["policy"] + [f"rate={r:g}" for r in rates],
        rows,
        title="Mean performance ratio vs load (Pareto durations, alpha=1.1)",
    ))

    print("\nReading the crossover:")
    for rate in rates:
        res = results[rate]
        best_nc = min(res[l].mean for l, _ in POLICIES[:2])
        best_c = min(res[l].mean for l, _ in POLICIES[2:])
        verdict = "clairvoyance wins" if best_c < best_nc else "not worth it"
        print(f"  rate={rate:5g}: best non-clairvoyant {best_nc:.3f} vs "
              f"best clairvoyant {best_c:.3f} -> {verdict} "
              f"({(best_nc - best_c) / best_nc:+.1%})")
    print("\nThe 1-D theory agrees with the trend: clairvoyant DBP admits "
          "O(sqrt(log mu))-competitive\nalgorithms [Azar-Vainstein], far "
          "below the Omega(mu) non-clairvoyant lower bounds.")

if __name__ == "__main__":
    main()
