#!/usr/bin/env python
"""Quickstart: pack an online job sequence and measure its cost.

Covers the core API in ~40 lines:

1. build an instance (here: the paper's Section 7 uniform workload);
2. run an Any Fit algorithm on it;
3. compare the cost against the Lemma 1 optimum lower bound;
4. audit the packing and inspect a few metrics.

Run:  python examples/quickstart.py
"""

from repro import MoveToFront, UniformWorkload, compute_metrics, simulate
from repro.optimum import all_lower_bounds, height_lower_bound

def main() -> None:
    # 1. a random instance: 2 resource dimensions (say CPU and memory),
    #    500 jobs, durations 1..10, server capacity 100 per dimension
    generator = UniformWorkload(d=2, n=500, mu=10, T=1000, B=100)
    instance = generator.sample_seeded(42)
    print(f"instance: {instance!r}")

    # 2. dispatch every arriving job with Move To Front - the paper's
    #    recommended policy
    packing = simulate(MoveToFront(), instance)

    # 3. how close to optimal? (exact OPT is NP-hard; the Lemma 1(i)
    #    lower bound is the paper's yardstick)
    lb = height_lower_bound(instance)
    print(f"\ncost (total server usage time): {packing.cost:.0f}")
    print(f"optimum lower bound:            {lb:.0f}")
    print(f"performance ratio:              {packing.cost / lb:.3f}")
    print(f"all Lemma 1 bounds:             "
          + ", ".join(f"{k}={v:.0f}" for k, v in all_lower_bounds(instance).items()))

    # 4. audit + metrics
    packing.validate()  # raises if any bin ever exceeded capacity
    m = compute_metrics(packing)
    print(f"\nbins opened:          {m.num_bins}")
    print(f"peak concurrent bins: {m.max_concurrent}")
    print(f"mean concurrent bins: {m.mean_concurrent:.2f}")
    print(f"avg utilisation:      {m.average_utilization:.1%}")
    print("\npacking audited: every bin within capacity at every instant")

if __name__ == "__main__":
    main()
