#!/usr/bin/env python
"""Operations study: flash crowds + hourly billing.

Two realities the base model idealises away, both flagged in the paper's
introduction, and both implemented as library extensions:

* demand comes in *spikes* (a game launch, a marketing event) on top of
  a steady baseline — modelled by ``SpikeWorkload``;
* the provider bills in *quanta* ("hourly or monthly basis") — modelled
  by ``billed_cost`` and the quantum-aware Move To Front variant.

This study profiles the workload, compares dispatch policies under
continuous vs hourly billing, and measures what quantum-awareness buys.

Run:  python examples/billing_and_spikes.py
"""

import numpy as np

from repro import PAPER_ALGORITHMS, compare_algorithms, run
from repro.analysis.report import format_table
from repro.simulation.billing import QuantumAwareMoveToFront, billed_cost
from repro.workloads import (
    DirichletSize,
    LognormalDuration,
    PoissonWorkload,
    SpikeWorkload,
    render_description,
)

QUANTUM = 1.0  # one billable hour

def build_workload() -> SpikeWorkload:
    baseline = PoissonWorkload(
        d=2,
        rate=3.0,
        horizon=48.0,  # two days, hours as time units
        durations=LognormalDuration(log_mean=0.8, log_sigma=1.0, floor=0.25, cap=24),
        sizes=DirichletSize(min_mag=0.05, max_mag=0.5),
    )
    return SpikeWorkload(
        base=baseline,
        num_spikes=4,
        spike_size=40,
        spike_demand=(0.12, 0.08),
        spike_duration=1.5,
    )

def main() -> None:
    instance = build_workload().sample_seeded(99)
    print(render_description(instance))
    print()

    packings = compare_algorithms(PAPER_ALGORITHMS, instance)
    aware = run(QuantumAwareMoveToFront(quantum=QUANTUM), instance)
    packings[aware.algorithm] = aware

    rows = []
    for name, packing in packings.items():
        rows.append([
            name,
            packing.cost,
            billed_cost(packing, QUANTUM),
            billed_cost(packing, QUANTUM) / packing.cost - 1.0,
            packing.num_bins,
        ])
    rows.sort(key=lambda r: r[2])
    print(format_table(
        ["policy", "server-hours (continuous)", f"bill (q={QUANTUM:g}h)",
         "quantisation overhead", "servers"],
        rows,
        title="Two days of spiky traffic: continuous vs hourly billing",
    ))

    best = rows[0]
    plain_mf_bill = next(r[2] for r in rows if r[0] == "move_to_front")
    aware_bill = next(r[2] for r in rows if r[0] == "quantum_aware_move_to_front")
    print(f"\ncheapest bill: {best[0]} at {best[2]:.1f} paid hours")
    print(f"quantum-aware MF vs plain MF: "
          f"{plain_mf_bill - aware_bill:+.1f} paid hours "
          f"({(plain_mf_bill - aware_bill) / plain_mf_bill:+.2%})")
    print("\nTakeaways: spikes of identical short sessions reward alignment "
          "(MF-family policies);\nhourly billing punishes policies that "
          "scatter short usage across many servers (Next Fit).")

if __name__ == "__main__":
    main()
